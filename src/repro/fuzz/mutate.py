"""Seeded mutation operators over (FaultPlan, schedule, config) inputs.

Each operator takes a valid :class:`~repro.fuzz.inputs.FuzzInput` and a
:class:`numpy.random.Generator` and returns a candidate — which
:meth:`Mutator.mutate` then revalidates through the *existing* plan
validator plus the fuzz-domain envelope.  Invalid candidates are simply
retried with a different operator: the validator is the source of truth
for what the injector may legally be asked to do, and mutation never
gets to relitigate it.

Determinism: the Mutator owns one ``default_rng(seed)`` stream; a
campaign's mutant sequence is a pure function of (campaign seed, parent
selection order), so runs replay exactly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..chaos.des import CRASH_RECOVERY_DELAY
from ..chaos.plan import ChaosError, Fault, FaultPlan
from .inputs import (
    HORIZON_RANGE,
    INTERVAL_MIN,
    MAX_DELAY,
    MAX_FAULTS,
    MSG_SIZE_RANGE,
    N_RANGE,
    P_MIN,
    RATE_RANGE,
    TIMEOUT_MIN,
    TOPOLOGIES,
    WORKLOADS,
    FuzzInput,
    WorkloadSchedule,
)

Rng = np.random.Generator

#: Wire/storage kinds an added fault may draw (crash/partition have their
#: own dedicated operators because they carry structured parameters).
_ADDABLE = ("drop", "duplicate", "reorder", "delay",
            "torn-write", "fsync-fail", "slow-flush")


def _u(rng: Rng, lo: float, hi: float) -> float:
    return float(rng.uniform(lo, hi))


def _window(rng: Rng, inp: FuzzInput, slack: float = 0.0) -> tuple[float, float]:
    """A random finite fault window inside the input's fault budget."""
    budget = inp.fault_budget_end() - slack
    start = _u(rng, 0.0, max(budget - 5.0, 1.0))
    end = _u(rng, start + 2.0, max(budget, start + 2.5))
    return start, min(end, budget)


def _replace_fault(inp: FuzzInput, i: int, f: Fault) -> FuzzInput:
    faults = list(inp.plan.faults)
    faults[i] = f
    return inp.derive(plan=FaultPlan(faults=tuple(faults),
                                     seed=inp.plan.seed))


def _pick(rng: Rng, seq: tuple) -> object:
    return seq[int(rng.integers(len(seq)))]


# -- plan operators ---------------------------------------------------------

def add_fault(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Append one random wire/storage fault in a fresh window."""
    kind = str(_pick(rng, _ADDABLE))
    start, end = _window(rng, inp,
                         slack=MAX_DELAY if kind == "delay" else 0.0)
    kw: dict = {"kind": kind, "p": _u(rng, P_MIN, 1.0),
                "start": start, "end": end}
    if kind == "drop":
        kw["frames"] = ("app",)
    elif kind in ("duplicate", "reorder", "delay"):
        kw["frames"] = ("app", "ctl") if rng.random() < 0.5 else ("app",)
    if kind == "delay":
        kw["delay"] = _u(rng, 0.5, MAX_DELAY)
    if kind == "slow-flush":
        kw["delay"] = _u(rng, 0.1, 2.0)
    return inp.derive(plan=FaultPlan(
        faults=inp.plan.faults + (Fault(**kw),), seed=inp.plan.seed))


def add_partition(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Append a partition fault over a random two-group cut."""
    if inp.n < 2:
        raise ChaosError("partition needs n >= 2")
    cut = 1 + int(rng.integers(inp.n - 1))
    pids = list(rng.permutation(inp.n))
    start, end = _window(rng, inp)
    fault = Fault(kind="partition", start=start, end=end,
                  group_a=tuple(int(p) for p in pids[:cut]),
                  group_b=tuple(int(p) for p in pids[cut:]))
    return inp.derive(plan=FaultPlan(
        faults=inp.plan.faults + (fault,), seed=inp.plan.seed))


def add_crash(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Append a crash of a random pid with recovery inside the budget."""
    budget = inp.fault_budget_end()
    at = _u(rng, 5.0, max(budget - CRASH_RECOVERY_DELAY, 5.5))
    fault = Fault(kind="crash", pid=int(rng.integers(inp.n)), at=at)
    return inp.derive(plan=FaultPlan(
        faults=inp.plan.faults + (fault,), seed=inp.plan.seed))


def remove_fault(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Drop one random fault from the plan."""
    faults = inp.plan.faults
    if not faults:
        raise ChaosError("nothing to remove")
    i = int(rng.integers(len(faults)))
    return inp.derive(plan=FaultPlan(
        faults=faults[:i] + faults[i + 1:], seed=inp.plan.seed))


def rewindow_fault(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Move one fault to a fresh window (crashes: a fresh ``at``)."""
    faults = inp.plan.faults
    if not faults:
        raise ChaosError("nothing to re-window")
    i = int(rng.integers(len(faults)))
    f = faults[i]
    if f.kind == "crash":
        at = _u(rng, 1.0,
                max(inp.fault_budget_end() - CRASH_RECOVERY_DELAY, 1.5))
        return _replace_fault(inp, i, Fault(kind="crash", pid=f.pid, at=at))
    start, end = _window(rng, inp,
                         slack=f.delay if f.kind == "delay" else 0.0)
    return _replace_fault(inp, i, Fault(
        kind=f.kind, p=f.p, start=start, end=end, frames=f.frames,
        delay=f.delay, group_a=f.group_a, group_b=f.group_b))


def retune_fault(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Perturb a fault's probability / delay / frames / target pid."""
    faults = inp.plan.faults
    if not faults:
        raise ChaosError("nothing to retune")
    i = int(rng.integers(len(faults)))
    f = faults[i]
    if f.kind == "crash":
        return _replace_fault(inp, i, Fault(
            kind="crash", pid=int(rng.integers(inp.n)), at=f.at))
    if f.kind == "partition":
        return add_partition(remove_fault_at(inp, i), rng)
    p = float(np.clip(f.p * _u(rng, 0.5, 2.0), P_MIN, 1.0))
    delay = f.delay
    if f.kind in ("delay", "slow-flush"):
        delay = float(np.clip(delay * _u(rng, 0.5, 2.0), 0.1,
                              MAX_DELAY if f.kind == "delay" else 2.0))
    frames = f.frames
    if f.kind in ("duplicate", "reorder", "delay"):
        frames = ("app", "ctl") if rng.random() < 0.5 else ("app",)
    return _replace_fault(inp, i, Fault(
        kind=f.kind, p=p, start=f.start, end=f.end, frames=frames,
        delay=delay))


def remove_fault_at(inp: FuzzInput, i: int) -> FuzzInput:
    """Drop the fault at index ``i`` (helper for retune/splice)."""
    faults = inp.plan.faults
    return inp.derive(plan=FaultPlan(
        faults=faults[:i] + faults[i + 1:], seed=inp.plan.seed))


def splice_plans(inp: FuzzInput, rng: Rng, other: FuzzInput) -> FuzzInput:
    """Crossover: a random subset of each parent's faults."""
    pool = list(inp.plan.faults) + list(other.plan.faults)
    if not pool:
        raise ChaosError("nothing to splice")
    keep = [f for f in pool if rng.random() < 0.5]
    if not keep:
        keep = [pool[int(rng.integers(len(pool)))]]
    return inp.derive(plan=FaultPlan(faults=tuple(keep[:MAX_FAULTS]),
                                     seed=inp.plan.seed))


def reseed_plan(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """New RNG streams for the same plan shape (different coin flips)."""
    return inp.derive(
        plan=FaultPlan(faults=inp.plan.faults,
                       seed=int(rng.integers(1 << 30))),
        seed=int(rng.integers(1 << 30)))


# -- schedule / config operators -------------------------------------------

def perturb_rate(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Scale the workload rate by 0.25-4x, clipped to the envelope."""
    s = inp.schedule
    rate = float(np.clip(s.rate * _u(rng, 0.25, 4.0), *RATE_RANGE))
    return inp.derive(schedule=WorkloadSchedule(
        workload=s.workload, rate=rate, msg_size=s.msg_size,
        topology=s.topology))


def swap_workload(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Switch workload generator and jitter the message size."""
    s = inp.schedule
    return inp.derive(schedule=WorkloadSchedule(
        workload=str(_pick(rng, WORKLOADS)), rate=s.rate,
        msg_size=int(np.clip(int(s.msg_size * _u(rng, 0.5, 2.0)),
                             *MSG_SIZE_RANGE)),
        topology=s.topology))


def swap_topology(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Switch the latency topology (complete/ring/star/line)."""
    s = inp.schedule
    return inp.derive(schedule=WorkloadSchedule(
        workload=s.workload, rate=s.rate, msg_size=s.msg_size,
        topology=str(_pick(rng, TOPOLOGIES))))


def perturb_geometry(inp: FuzzInput, rng: Rng) -> FuzzInput:
    """Jitter (n, horizon, interval, timeout) inside the envelope."""
    n = int(np.clip(inp.n + int(rng.integers(-1, 2)), *N_RANGE))
    horizon = float(np.clip(inp.horizon * _u(rng, 0.6, 1.5),
                            *HORIZON_RANGE))
    interval = float(np.clip(inp.interval * _u(rng, 0.5, 1.5),
                             INTERVAL_MIN, horizon / 4.0))
    timeout = float(np.clip(inp.timeout * _u(rng, 0.5, 1.5),
                            TIMEOUT_MIN, interval))
    return inp.derive(n=n, horizon=horizon, interval=interval,
                      timeout=timeout)


#: name -> operator.  Order is part of the campaign's determinism contract.
OPERATORS: dict[str, Callable[[FuzzInput, Rng], FuzzInput]] = {
    "add_fault": add_fault,
    "add_partition": add_partition,
    "add_crash": add_crash,
    "remove_fault": remove_fault,
    "rewindow_fault": rewindow_fault,
    "retune_fault": retune_fault,
    "reseed_plan": reseed_plan,
    "perturb_rate": perturb_rate,
    "swap_workload": swap_workload,
    "swap_topology": swap_topology,
    "perturb_geometry": perturb_geometry,
}


class Mutator:
    """Draws operators from a seeded stream; yields only valid mutants."""

    def __init__(self, seed: int = 0, max_tries: int = 16) -> None:
        self.rng = np.random.default_rng(seed)
        self.max_tries = max_tries
        self._names = tuple(OPERATORS)

    def mutate(self, inp: FuzzInput,
               other: FuzzInput | None = None) -> tuple[FuzzInput, str]:
        """One valid mutant of ``inp`` and the operator that produced it.

        ``other`` (a second corpus parent) enables the splice crossover.
        Falls back to ``reseed_plan`` — always valid — if every try
        produced an out-of-envelope candidate.
        """
        rng = self.rng
        for _ in range(self.max_tries):
            if other is not None and rng.random() < 0.1:
                name, op = "splice_plans", None
            else:
                name = str(self._names[int(rng.integers(len(self._names)))])
                op = OPERATORS[name]
            try:
                cand = (splice_plans(inp, rng, other) if op is None
                        else op(inp, rng))
                cand.validate()
                return cand, name
            except ChaosError:
                continue
        cand = reseed_plan(inp, rng)
        cand.validate()
        return cand, "reseed_plan"
