"""repro — reproduction of Jiang & Manivannan's optimistic checkpointing.

Top-level namespace re-exporting the most commonly used pieces; see the
subpackages for the full API:

* :mod:`repro.core` — the paper's algorithm (basic + generalized);
* :mod:`repro.baselines` — Chandy-Lamport, Koo-Toueg, staggered, CIC,
  uncoordinated checkpointing;
* :mod:`repro.des`, :mod:`repro.net`, :mod:`repro.storage` — simulation
  substrates;
* :mod:`repro.causality` — happened-before / consistency verification;
* :mod:`repro.workload`, :mod:`repro.recovery`, :mod:`repro.metrics`,
  :mod:`repro.harness` — experiment machinery.
"""

__version__ = "1.0.0"
