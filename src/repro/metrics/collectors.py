"""Uniform per-run metric extraction.

``collect()`` reduces one finished simulation (simulator + network +
storage + protocol runtime) to a flat :class:`RunMetrics` record with the
same fields for *every* protocol — the comparison tables in the benchmarks
are rows of these.  Protocol-specific extras (forced-checkpoint counts,
convergence latency, ...) ride in ``extra``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..des.engine import Simulator
from ..net.network import Network
from ..storage.stable_storage import StableStorage
from .stats import Summary, step_series_time_average


@dataclass
class RunMetrics:
    """Flat record of one run's costs (one table row)."""

    protocol: str
    n: int
    makespan: float
    # Messages --------------------------------------------------------------
    app_messages: int
    app_bytes: int
    piggyback_bytes: int
    ctl_messages: int
    ctl_bytes: int
    # Checkpoints ------------------------------------------------------------
    checkpoints: int
    rounds_completed: int
    log_bytes: int
    # Stable storage ----------------------------------------------------------
    storage_writes: int
    storage_bytes: int
    peak_pending_writers: int
    mean_pending_writers: float
    wait: Summary
    storage_utilization: float
    # Application impact ---------------------------------------------------------
    blocked_time: float
    response_delay: Summary
    # Protocol-specific extras ------------------------------------------------------
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flatten for table rows / CSV-ish dumping."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "makespan": self.makespan,
            "app_messages": self.app_messages,
            "app_bytes": self.app_bytes,
            "piggyback_bytes": self.piggyback_bytes,
            "ctl_messages": self.ctl_messages,
            "ctl_bytes": self.ctl_bytes,
            "checkpoints": self.checkpoints,
            "rounds_completed": self.rounds_completed,
            "log_bytes": self.log_bytes,
            "storage_writes": self.storage_writes,
            "storage_bytes": self.storage_bytes,
            "peak_pending_writers": self.peak_pending_writers,
            "mean_pending_writers": self.mean_pending_writers,
            "mean_wait": self.wait.mean,
            "max_wait": self.wait.max,
            "storage_utilization": self.storage_utilization,
            "blocked_time": self.blocked_time,
            "mean_response_delay": self.response_delay.mean,
            "max_response_delay": self.response_delay.max,
            **{f"extra.{k}": v for k, v in self.extra.items()},
        }


def _rounds_completed(runtime: Any) -> int:
    """Completed global checkpoints, via whichever surface the runtime has."""
    if hasattr(runtime, "finalized_seqs"):        # optimistic
        seqs = runtime.finalized_seqs()
        return len([s for s in seqs if s > 0])
    if hasattr(runtime, "complete_rounds"):        # CL / KT / staggered
        return len(runtime.complete_rounds())
    if hasattr(runtime, "common_indices"):         # CIC
        return len(runtime.common_indices())
    if hasattr(runtime, "common_sns"):             # MS quasi-synchronous
        return len(runtime.common_sns())
    return 0


def collect(protocol: str, sim: Simulator, network: Network,
            storage: StableStorage, runtime: Any,
            extra: dict[str, Any] | None = None) -> RunMetrics:
    """Reduce one finished run to a :class:`RunMetrics` record."""
    makespan = sim.now
    waits = storage.waits()
    delays = (runtime.response_delays()
              if hasattr(runtime, "response_delays") else [])
    xtra: dict[str, Any] = dict(extra or {})
    if hasattr(runtime, "forced_checkpoints"):
        xtra.setdefault("forced_checkpoints", runtime.forced_checkpoints())
    if hasattr(runtime, "convergence_latencies"):
        lat = list(runtime.convergence_latencies().values())
        xtra.setdefault("convergence_mean",
                        float(np.mean(lat)) if lat else 0.0)
        xtra.setdefault("convergence_max",
                        float(np.max(lat)) if lat else 0.0)
    if hasattr(runtime, "total_log_bytes"):
        log_bytes = runtime.total_log_bytes()
    else:
        log_bytes = 0
    if hasattr(runtime, "max_local_buffer_bytes"):
        xtra.setdefault("max_local_buffer_bytes",
                        runtime.max_local_buffer_bytes())
    xtra.setdefault("peak_stable_bytes", storage.space.peak_bytes())
    xtra.setdefault("held_stable_bytes", storage.space.held_bytes)
    return RunMetrics(
        protocol=protocol,
        n=network.n,
        makespan=makespan,
        app_messages=network.total_sent("app"),
        app_bytes=network.total_bytes("app"),
        piggyback_bytes=network.total_overhead_bytes("app"),
        ctl_messages=network.total_sent() - network.total_sent("app"),
        ctl_bytes=network.total_bytes() - network.total_bytes("app"),
        checkpoints=(runtime.total_checkpoints()
                     if hasattr(runtime, "total_checkpoints") else 0),
        rounds_completed=_rounds_completed(runtime),
        log_bytes=log_bytes,
        storage_writes=storage.completed(),
        storage_bytes=storage.bytes_written(),
        peak_pending_writers=storage.peak_pending(),
        mean_pending_writers=step_series_time_average(
            [(t, float(v)) for t, v in storage.pending_series], makespan),
        wait=Summary.of(waits),
        storage_utilization=storage.utilization(),
        blocked_time=(runtime.total_blocked_time()
                      if hasattr(runtime, "total_blocked_time") else 0.0),
        response_delay=Summary.of(delays),
        extra=xtra,
    )
