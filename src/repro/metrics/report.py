"""ASCII table/series rendering for experiment output.

The benchmarks print "the same rows/series the paper would report"; this
module is the single renderer so every experiment's output looks alike.
No external dependencies — plain monospace tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, the rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """A simple right-aligned monospace table.

    >>> t = Table("protocol", "peak writers", title="E3")
    >>> t.add_row("optimistic", 1)
    >>> t.add_row("chandy-lamport", 8)
    >>> print(t.render())   # doctest: +SKIP
    """

    def __init__(self, *headers: str, title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> "Table":
        """Append one row (cell count must match the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append([_fmt(c) for c in cells])
        return self

    def render(self) -> str:
        """Render the table to a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w)
                                for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w)
                                    for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[str]:
        """Raw (formatted) cells of one column — tests assert on these."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        return self.render()


def series(label: str, xs: Sequence[Any], ys: Sequence[Any],
           x_name: str = "x", y_name: str = "y") -> str:
    """Render a 1-D series (a figure's data) as a two-column table."""
    t = Table(x_name, y_name, title=label)
    for x, y in zip(xs, ys):
        t.add_row(x, y)
    return t.render()


def bar_chart(label: str, pairs: dict[str, float], width: int = 40,
              unit: str = "") -> str:
    """Render a horizontal ASCII bar chart (sweeps/examples eye candy).

    Bars scale to the maximum value; zero/negative values get no bar.
    """
    if width < 5:
        raise ValueError(f"width must be >= 5, got {width}")
    if not pairs:
        return label
    peak = max(max(pairs.values()), 0.0)
    key_w = max(len(str(k)) for k in pairs)
    lines = [label] if label else []
    for key, value in pairs.items():
        n = int(round(width * value / peak)) if peak > 0 and value > 0 else 0
        bar = "#" * n
        lines.append(f"  {str(key).ljust(key_w)} | {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def kv_block(title: str, pairs: dict[str, Any]) -> str:
    """Render a key/value block (run configuration echo)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)
