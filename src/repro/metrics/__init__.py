"""Metric extraction, summary statistics and table rendering."""

from .collectors import RunMetrics, collect
from .report import Table, bar_chart, kv_block, series
from .runreport import render_run_report
from .stats import (
    Summary,
    ratio,
    step_series_max,
    step_series_time_average,
)

__all__ = [
    "RunMetrics",
    "Summary",
    "Table",
    "bar_chart",
    "collect",
    "kv_block",
    "ratio",
    "render_run_report",
    "series",
    "step_series_max",
    "step_series_time_average",
]
