"""Summary statistics helpers (numpy-backed).

Every experiment reduces raw per-event measurements (waits, latencies,
counts) to the same small :class:`Summary`; centralizing the reduction
keeps benchmark output columns identical across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    max: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return cls(n=0, mean=0.0, std=0.0, min=0.0, p50=0.0, p95=0.0,
                       max=0.0)
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            # Sample std (ddof=1), matching replicate.confidence_interval;
            # a single observation has no spread estimate -> 0.
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            min=float(arr.min()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
        )

    def __str__(self) -> str:
        if self.n == 0:
            return "n=0"
        return (f"n={self.n} mean={self.mean:.4g} p50={self.p50:.4g} "
                f"p95={self.p95:.4g} max={self.max:.4g}")


def step_series_max(series: list[tuple[float, float]]) -> float:
    """Maximum value of a (time, value) step series (0 for empty)."""
    if not series:
        return 0.0
    return max(v for _, v in series)


def step_series_time_average(series: list[tuple[float, float]],
                             end: float) -> float:
    """Time-weighted average of a step series over [first time, end].

    Each value holds from its timestamp until the next; the last value
    holds until ``end``.  Used for mean queue length / mean pending writers.
    """
    if not series:
        return 0.0
    total = 0.0
    t0 = series[0][0]
    if end <= t0:
        return float(series[0][1])
    for (t, v), (t_next, _) in zip(series, series[1:]):
        total += v * (min(t_next, end) - min(t, end))
    last_t, last_v = series[-1]
    if last_t < end:
        total += last_v * (end - last_t)
    return total / (end - t0)


def ratio(a: float, b: float) -> float:
    """``a / b`` with the 0/0 = 1 and x/0 = inf conventions benchmarks use."""
    if b == 0:
        return 1.0 if a == 0 else float("inf")
    return a / b
