"""One-page plain-text report for a finished run.

Combines the configuration echo, the flat metrics, the checkpoint-round
table, the consistency verdict and a space-time diagram into a single
string — what ``repro run --report`` prints and what a lab notebook would
paste.
"""

from __future__ import annotations

from typing import Any

from ..viz.spacetime import render_spacetime
from .report import Table, kv_block


def render_run_report(result: Any, *, diagram_width: int = 72,
                      max_rounds: int = 20) -> str:
    """Render a :class:`~repro.harness.experiment.RunResult` as text."""
    cfg = result.config
    parts: list[str] = []

    parts.append(kv_block("configuration", {
        "protocol": cfg.protocol,
        "n": cfg.n,
        "seed": cfg.seed,
        "horizon": cfg.horizon,
        "workload": cfg.workload,
        "checkpoint_interval": cfg.checkpoint_interval,
        "state_bytes": cfg.state_bytes,
        "topology": cfg.topology,
        "latency": cfg.latency,
    }))
    parts.append("")

    parts.append(kv_block("metrics", result.metrics.as_dict()))
    parts.append("")

    runtime = result.runtime
    if hasattr(runtime, "finalized_seqs"):
        table = Table("S_k", "convergence (s)", "log bytes",
                      title="checkpoint rounds")
        convergence = runtime.convergence_latencies()
        seqs = [s for s in runtime.finalized_seqs() if s > 0]
        for seq in seqs[:max_rounds]:
            log_bytes = sum(h.finalized[seq].log_bytes
                            for h in runtime.hosts.values())
            table.add_row(seq, convergence.get(seq, ""), log_bytes)
        if len(seqs) > max_rounds:
            table.add_row("...", "", "")
        parts.append(table.render())
        parts.append("")

    if result.orphans:
        bad = {k: v for k, v in result.orphans.items() if v}
        verdict = ("all consistent" if not bad
                   else f"ORPHANED CUTS: {bad}")
        parts.append(f"consistency: {len(result.orphans)} global "
                     f"checkpoints verified — {verdict}")
        parts.append("")

    parts.append(render_spacetime(result.sim.trace, cfg.n,
                                  width=diagram_width))
    return "\n".join(parts)
