"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary heap of ``(time, priority, seq, event)``
entries and executes them in ``(time, priority, seq)`` order.  The design
goals, in priority order:

1. **Determinism.**  The ``seq`` tie-breaker makes event order total; all
   randomness is funnelled through the :class:`~repro.des.rng.RngRegistry`
   attached to the simulator.  Identical configuration + seed ⇒ identical
   trace (a tested invariant).
2. **Watchdogs.**  Distributed protocols under test can livelock; ``run``
   accepts ``until`` and ``max_events`` guards so a broken protocol fails a
   test instead of hanging it.
3. **Speed.**  Callbacks, not coroutines, and a heap of plain tuples so
   ordering — including same-instant delivery bursts, which only differ in
   ``seq`` — is resolved entirely by C-level tuple comparison instead of
   ``Event.__lt__``.  The run loop is the single hot path of every
   experiment: per event it does a pop, one flag check, three attribute
   stores, and the callback.

Cancellation is lazy (cancelled entries are skipped when popped), but the
simulator also counts live cancellations and compacts the heap once
cancelled entries are both numerous (≥ :data:`_COMPACT_MIN`) and the
majority of the heap — so timer-heavy protocols that arm-then-cancel on
every message keep the heap bounded by the *active* event count instead of
degrading O(total-ever-scheduled).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from .errors import SchedulingError, SimulationLimitExceeded
from .events import Event, EventPriority, Timer
from .rng import RngRegistry
from .trace import TraceRecorder

#: Never compact below this many cancelled entries — rebuilds are O(heap)
#: and tiny heaps are not worth touching.
_COMPACT_MIN = 256


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for the RNG registry (see :class:`RngRegistry`).
    trace:
        Optional pre-built trace recorder; a fresh one is created by default.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0, trace: TraceRecorder | None = None) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder()
        #: Heap of ``(time, priority, seq, payload)`` tuples; ``payload``
        #: is an :class:`Event` (cancellable) or a bare zero-arg callable
        #: (from :meth:`schedule_fast` — nothing to cancel, no allocation).
        self._heap: list[tuple[float, int, int, "Event | Callable[[], None]"]] = []
        self._seq = 0
        self._executed = 0
        self._cancelled = 0
        #: High-water mark of the heap size (cancelled entries included).
        self.peak_pending = 0
        self._running = False
        self._stop_requested = False

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None], *,
                 priority: int = EventPriority.NORMAL) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        ``delay`` must be non-negative; zero-delay events run later in the
        current instant (after anything already queued at ``now`` with equal
        priority, because of the ``seq`` tie-breaker).
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        # Body of schedule_at, inlined: this is called once per message send
        # and once per timer (re)arm, so the extra frame is measurable.
        time = self.now + delay
        self._seq = seq = self._seq + 1
        ev = Event(time=time, priority=priority, seq=seq, fn=fn)
        ev._owner = self
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, ev))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)
        return ev

    def schedule_at(self, time: float, fn: Callable[[], None], *,
                    priority: int = EventPriority.NORMAL) -> Event:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time!r} before now={self.now!r}")
        self._seq = seq = self._seq + 1
        ev = Event(time=time, priority=priority, seq=seq, fn=fn)
        ev._owner = self
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, ev))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)
        return ev

    def schedule_fast(self, delay: float, fn: Callable[[], None],
                      priority: int = EventPriority.NORMAL) -> None:
        """Schedule ``fn`` without returning a cancellation handle.

        The heap entry stores the bare callable instead of wrapping it in
        an :class:`Event`, so self-rescheduling hot loops (workload send
        loops firing once per message) pay no allocation per (re)arm
        beyond the heap tuple.  Callers that may need ``cancel()`` must
        use :meth:`schedule`; callbacks that can become stale should
        guard themselves (the workload closures check halted/incarnation).
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        time = self.now + delay
        self._seq = seq = self._seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, fn))
        if len(heap) > self.peak_pending:
            self.peak_pending = len(heap)

    def timer(self, fn: Callable[[], None], *,
              priority: int = EventPriority.TIMER) -> Timer:
        """Create an (unarmed) restartable :class:`Timer` bound to this sim."""
        return Timer(self, fn, priority=priority)

    # -- execution ---------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None,
            strict: bool = False) -> None:
        """Execute events until the heap drains or a guard trips.

        Parameters
        ----------
        until:
            Stop once the next event's timestamp exceeds this value (the
            clock is then advanced to ``until``).  ``None`` = no time limit.
        max_events:
            Stop after executing this many events in *this call*.
        strict:
            When ``True``, tripping a guard raises
            :class:`SimulationLimitExceeded` instead of returning silently.
            Tests use ``strict=True`` so livelock is loud.
        """
        heap = self._heap
        pop = heapq.heappop
        executed_here = 0
        self._running = True
        self._stop_requested = False
        try:
            if until is None:
                # Fast path: no time guard, so events can be popped
                # unconditionally.  ``limit == -1`` (no event cap) never
                # equals the non-negative counter, avoiding a None check
                # per iteration.
                limit = -1 if max_events is None else max_events
                while heap:
                    if self._stop_requested:
                        return
                    if executed_here == limit:
                        if strict:
                            raise SimulationLimitExceeded(
                                f"event limit {max_events} reached")
                        return
                    entry = pop(heap)
                    fn = entry[3]
                    if fn.__class__ is Event:
                        if fn.cancelled:
                            self._cancelled -= 1
                            continue
                        fn = fn.fn
                    self.now = entry[0]
                    self._executed += 1
                    executed_here += 1
                    fn()
                return
            # Same ``limit == -1`` trick as the fast path: one int compare
            # per iteration instead of a None check plus a compare.
            limit = -1 if max_events is None else max_events
            while heap:
                if self._stop_requested:
                    return
                if executed_here == limit:
                    if strict:
                        raise SimulationLimitExceeded(
                            f"event limit {max_events} reached")
                    return
                entry = pop(heap)
                fn = entry[3]
                if fn.__class__ is Event:
                    if fn.cancelled:
                        self._cancelled -= 1
                        continue
                    fn = fn.fn
                time = entry[0]
                if time > until:
                    # Beyond the horizon: put it back for a later run()
                    # call, advance the clock to the limit, stop.
                    heapq.heappush(heap, entry)
                    self.now = until
                    if strict:
                        raise SimulationLimitExceeded(
                            f"time limit {until} reached with events pending")
                    return
                self.now = time
                self._executed += 1
                executed_here += 1
                fn()
            if self.now < until:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        Useful for fine-grained tests that interleave assertions with events.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[3]
            if fn.__class__ is Event:
                if fn.cancelled:
                    self._cancelled -= 1
                    continue
                fn = fn.fn
            self.now = entry[0]
            self._executed += 1
            fn()
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stop_requested = True

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events, including cancelled-but-unpopped ones."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._executed

    def peek_time(self) -> float | None:
        """Timestamp of the next *active* event, or ``None`` if drained.

        Cancelled entries encountered at the top are popped off as a side
        effect (they would be skipped by ``run`` anyway).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.__class__ is Event and ev.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
            else:
                return entry[0]
        return None

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when cancelled entries
        dominate the heap (≥ ``_COMPACT_MIN`` of them and ≥ half the heap)."""
        self._cancelled = c = self._cancelled + 1
        if c >= _COMPACT_MIN and 2 * c >= len(self._heap):
            self.drain_cancelled()

    def drain_cancelled(self) -> None:
        """Compact the heap by dropping cancelled events.

        Called automatically when cancellations dominate (see
        :meth:`_note_cancelled`); tests of memory behaviour call it
        explicitly.  In-place so aliases of the heap list stay valid
        (the run loop holds one while executing).
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if entry[3].__class__ is not Event or not entry[3].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now:.6g}, pending={self.pending}, "
                f"executed={self._executed})")


def run_all(sims: Iterable[Simulator], until: float | None = None) -> None:
    """Convenience helper: run several independent simulators sequentially.

    Used by sweeps that build one simulator per parameter point; keeping it
    here avoids each harness re-writing the same loop.
    """
    for sim in sims:
        sim.run(until=until)
