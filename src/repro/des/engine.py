"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary heap of :class:`~repro.des.events.Event`
objects and executes them in ``(time, priority, seq)`` order.  The design
goals, in priority order:

1. **Determinism.**  The ``seq`` tie-breaker makes event order total; all
   randomness is funnelled through the :class:`~repro.des.rng.RngRegistry`
   attached to the simulator.  Identical configuration + seed ⇒ identical
   trace (a tested invariant).
2. **Watchdogs.**  Distributed protocols under test can livelock; ``run``
   accepts ``until`` and ``max_events`` guards so a broken protocol fails a
   test instead of hanging it.
3. **Simplicity.**  Callbacks, not coroutines.  Protocol handlers in this
   library are short reactions to message deliveries and timer expirations,
   which maps directly onto callbacks and keeps the hot loop small (the
   profiling-first guideline: the loop below is the single hot path of every
   experiment, so it does a heap pop, two attribute checks, and a call).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from .errors import SchedulingError, SimulationLimitExceeded
from .events import Event, EventPriority, Timer
from .rng import RngRegistry
from .trace import TraceRecorder


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for the RNG registry (see :class:`RngRegistry`).
    trace:
        Optional pre-built trace recorder; a fresh one is created by default.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0, trace: TraceRecorder | None = None) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceRecorder()
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        self._stop_requested = False

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None], *,
                 priority: int = EventPriority.NORMAL) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        ``delay`` must be non-negative; zero-delay events run later in the
        current instant (after anything already queued at ``now`` with equal
        priority, because of the ``seq`` tie-breaker).
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self.now + delay, fn, priority=priority)

    def schedule_at(self, time: float, fn: Callable[[], None], *,
                    priority: int = EventPriority.NORMAL) -> Event:
        """Schedule ``fn`` at absolute simulated ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time!r} before now={self.now!r}")
        self._seq += 1
        ev = Event(time=time, priority=priority, seq=self._seq, fn=fn)
        heapq.heappush(self._heap, ev)
        return ev

    def timer(self, fn: Callable[[], None], *,
              priority: int = EventPriority.TIMER) -> Timer:
        """Create an (unarmed) restartable :class:`Timer` bound to this sim."""
        return Timer(self, fn, priority=priority)

    # -- execution ---------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None,
            strict: bool = False) -> None:
        """Execute events until the heap drains or a guard trips.

        Parameters
        ----------
        until:
            Stop once the next event's timestamp exceeds this value (the
            clock is then advanced to ``until``).  ``None`` = no time limit.
        max_events:
            Stop after executing this many events in *this call*.
        strict:
            When ``True``, tripping a guard raises
            :class:`SimulationLimitExceeded` instead of returning silently.
            Tests use ``strict=True`` so livelock is loud.
        """
        executed_here = 0
        self._running = True
        self._stop_requested = False
        try:
            while self._heap:
                if self._stop_requested:
                    return
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    self.now = until
                    if strict:
                        raise SimulationLimitExceeded(
                            f"time limit {until} reached with events pending")
                    return
                if max_events is not None and executed_here >= max_events:
                    if strict:
                        raise SimulationLimitExceeded(
                            f"event limit {max_events} reached")
                    return
                heapq.heappop(self._heap)
                assert ev.time >= self.now, "heap produced an out-of-order event"
                self.now = ev.time
                self._executed += 1
                executed_here += 1
                ev.fn()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        Useful for fine-grained tests that interleave assertions with events.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            self._executed += 1
            ev.fn()
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stop_requested = True

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events, including cancelled-but-unpopped ones."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._executed

    def peek_time(self) -> float | None:
        """Timestamp of the next *active* event, or ``None`` if drained."""
        for ev in sorted(self._heap):
            if not ev.cancelled:
                return ev.time
        return None

    def drain_cancelled(self) -> None:
        """Compact the heap by dropping cancelled events.

        Long-running simulations with heavy timer churn can accumulate
        cancelled entries; tests of memory behaviour call this explicitly.
        """
        self._heap = [ev for ev in self._heap if not ev.cancelled]
        heapq.heapify(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now:.6g}, pending={self.pending}, "
                f"executed={self._executed})")


def run_all(sims: Iterable[Simulator], until: float | None = None) -> None:
    """Convenience helper: run several independent simulators sequentially.

    Used by sweeps that build one simulator per parameter point; keeping it
    here avoids each harness re-writing the same loop.
    """
    for sim in sims:
        sim.run(until=until)
