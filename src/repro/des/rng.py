"""Named, reproducible random-number streams.

Every stochastic component of the simulation (each channel's latency model,
each application process's workload, the failure injector, ...) draws from its
*own* named stream.  Streams are derived deterministically from a single root
seed plus the stream name, so:

* the same ``(root_seed, name)`` always yields the same sequence, regardless
  of the order in which streams are created or used;
* adding a new component (a new stream) does not perturb the draws seen by
  existing components — crucial for variance-reduction when comparing
  protocols over "the same" workload.

Streams are ``numpy.random.Generator`` instances (PCG64), per the hpc guides'
recommendation to use ``default_rng`` rather than the legacy global state.
"""

from __future__ import annotations

import zlib

import numpy as np


def _name_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer.

    ``zlib.crc32`` is stable across Python versions and processes (unlike
    ``hash``, which is salted), so stream derivation is fully reproducible.
    """
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory and cache for named random streams.

    Parameters
    ----------
    root_seed:
        Master seed for the whole simulation.  Two registries with the same
        root seed produce identical streams for identical names.

    Examples
    --------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("workload.p0")
    >>> b = reg.stream("workload.p1")
    >>> a is reg.stream("workload.p0")   # cached
    True
    >>> float(a.random()) != float(b.random())   # independent streams
    True
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.root_seed, _name_key(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn_seed(self, name: str) -> int:
        """Derive a plain integer seed for ``name``.

        Useful when a sub-component wants to build its own registry (e.g. a
        sweep deriving one root seed per parameter point).
        """
        seq = np.random.SeedSequence([self.root_seed, _name_key(name)])
        return int(seq.generate_state(1, dtype=np.uint64)[0])

    def names(self) -> list[str]:
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"
