"""Event primitives for the discrete-event simulation kernel.

The kernel orders events by the triple ``(time, priority, seq)``:

* ``time`` — simulated timestamp (float, seconds by convention);
* ``priority`` — tie-breaker for events at the same instant; smaller runs
  first.  The :class:`EventPriority` constants give the conventional bands
  used across the library (deliveries before timers before bookkeeping);
* ``seq`` — a monotonically increasing sequence number assigned by the
  simulator, which makes the order *total* and therefore the whole
  simulation deterministic for a fixed seed.

Events carry a zero-argument callback.  Cancellation is *lazy*: cancelling
marks the event and the engine skips it when popped, which is O(1) and avoids
re-heapifying.  A cancelled event also notifies its owning simulator (via
``_owner``) so the engine can compact the heap when cancelled entries pile
up — timer-heavy protocols re-arm and cancel constantly, and without
compaction the heap degrades O(total-ever-scheduled).
"""

from __future__ import annotations

import enum
from typing import Callable


class EventPriority(enum.IntEnum):
    """Conventional priority bands for same-timestamp ordering.

    The absolute values are arbitrary; only their relative order matters.
    Leaving gaps allows callers to slot custom priorities in between.
    """

    #: Message deliveries (network hands a message to a process).
    DELIVERY = 10
    #: Default band for ad-hoc callbacks.
    NORMAL = 20
    #: Timer expirations (protocol timeouts fire after deliveries at the
    #: same instant, mirroring real systems where I/O is serviced first).
    TIMER = 30
    #: Metric sampling / bookkeeping, runs last at an instant.
    MONITOR = 40


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.des.engine.Simulator.schedule`;
    user code normally holds them only to call :meth:`cancel`.

    Implementation note (profile-guided): the engine's heap stores
    ``(time, priority, seq, event)`` tuples, so ordering is resolved by
    C-level tuple comparison and ``__lt__`` never runs on the hot path.
    The class is slotted and the constructor does nothing but store its
    fields — one Event is allocated per cancellable scheduling.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "_owner")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[[], None], cancelled: bool = False) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        #: Lazy-cancellation flag; the engine skips cancelled events when
        #: popped.
        self.cancelled = cancelled
        #: The owning simulator (set by ``schedule_at``); cancellation
        #: notifies it so it can compact the heap.  ``None`` for events
        #: constructed directly (tests).
        self._owner = None

    def cancel(self) -> None:
        """Mark the event so the engine will skip it.

        Idempotent; cancelling an already-executed event has no effect.
        Notifies the owning simulator (if any) so heavy cancellation
        churn triggers heap compaction.
        """
        if not self.cancelled:
            self.cancelled = True
            owner = self._owner
            if owner is not None:
                owner._note_cancelled()

    @property
    def active(self) -> bool:
        """``True`` while the event is still pending and not cancelled."""
        return not self.cancelled

    # Heap ordering -------------------------------------------------------

    def sort_key(self) -> tuple[float, int, int]:
        """Total-order key used by the engine's heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, prio={self.priority}, seq={self.seq}, {state})"


class Timer:
    """A restartable, cancellable timer bound to a simulator.

    Protocol code frequently needs the pattern "arm a timeout, cancel it if
    the awaited thing happens, maybe re-arm later".  ``Timer`` wraps the
    underlying :class:`Event` so re-arming and cancelling are safe no matter
    the current state.
    """

    __slots__ = ("_sim", "_fn", "_priority", "_event")

    def __init__(self, sim: "SimulatorLike", fn: Callable[[], None],
                 priority: int = EventPriority.TIMER) -> None:
        self._sim = sim
        self._fn = fn
        self._priority = priority
        self._event: Event | None = None

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` from now.

        If the timer is already armed it is first cancelled, so only one
        expiration is ever pending.
        """
        ev = self._event
        if ev is not None:
            ev.cancel()
        self._event = self._sim.schedule(delay, self._fire, priority=self._priority)

    def cancel(self) -> None:
        """Disarm the timer if armed; idempotent."""
        ev = self._event
        if ev is not None:
            ev.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        """``True`` when an expiration is pending."""
        return self._event is not None and self._event.active

    def _fire(self) -> None:
        self._event = None
        self._fn()


class SimulatorLike:
    """Structural interface implemented by :class:`repro.des.engine.Simulator`.

    Declared here (rather than importing the engine) to avoid a circular
    import; exists purely for documentation and typing.
    """

    now: float

    def schedule(self, delay: float, fn: Callable[[], None], *,
                 priority: int = EventPriority.NORMAL) -> Event:  # pragma: no cover
        """See :meth:`repro.des.engine.Simulator.schedule`."""
        raise NotImplementedError
