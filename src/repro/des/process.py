"""Base class for simulated sequential processes.

The paper's system model (§2.1): *N* sequential processes, no shared memory,
no global clock, message passing only, asynchronous execution, channels with
finite but arbitrary delay, not necessarily FIFO.

:class:`SimProcess` gives each process an id, access to the simulator (clock,
timers, RNG) and hooks the network layer calls on delivery.  Subclasses
implement ``on_message``; the application/workload layer and every
checkpointing protocol build on this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .engine import Simulator
from .events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.message import Message
    from ..net.network import Network


class SimProcess:
    """A sequential process attached to a simulator and (later) a network.

    Subclass contract
    -----------------
    * ``on_message(msg)`` — invoked once per delivered message, in delivery
      order.  The process model is sequential: the kernel never interleaves
      two handlers of the same process at the same instant (total event
      order guarantees this).
    * ``on_start()`` — invoked when the simulation host starts the process
      (time 0 by default); override to arm timers / send first messages.
    """

    def __init__(self, pid: int, sim: Simulator) -> None:
        if pid < 0:
            raise ValueError(f"process ids must be non-negative, got {pid}")
        self.pid = pid
        self.sim = sim
        self.network: "Network | None" = None
        #: Count of handler invocations, useful for sanity checks in tests.
        self.delivered_count = 0
        #: Set by the failure injector: a halted (crashed) process neither
        #: receives deliveries nor fires timers armed via ``set_timeout``.
        self.halted = False
        #: Bumped on rollback recovery; timeouts armed under an older
        #: incarnation are silently dropped (their continuation chains
        #: belong to the discarded execution).
        self.incarnation = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Bind this process to a network (called by ``Network.add_process``)."""
        self.network = network

    def on_start(self) -> None:
        """Hook invoked at process start; default does nothing."""

    def on_message(self, msg: "Message") -> None:
        """Handle a delivered message; subclasses must override."""
        raise NotImplementedError

    # -- conveniences ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def send(self, dst: int, payload: Any = None, *, size: int = 0,
             kind: str = "app") -> "Message":
        """Send a message through the attached network.

        Thin wrapper over :meth:`Network.send`; raises if the process was
        never attached (a programming error the message names explicitly).
        """
        if self.network is None:
            raise RuntimeError(
                f"process {self.pid} is not attached to a network")
        return self.network.send(self.pid, dst, payload, size=size, kind=kind)

    def set_timeout(self, delay: float, fn: Callable[[], None]) -> Event:
        """Arm a fresh one-shot timeout firing ``delay`` from now.

        The callback is skipped if the process has been halted (crashed) by
        the failure injector, or rolled back to an earlier incarnation, in
        the meantime.  Returns the scheduled :class:`Event` (supports
        ``cancel()`` / ``active`` like the ``Timer`` it used to wrap —
        scheduling directly avoids a Timer allocation per arm on the
        workload hot path).
        """
        inc = self.incarnation

        def guarded() -> None:
            if not self.halted and self.incarnation == inc:
                fn()
        return self.sim.schedule(delay, guarded, priority=EventPriority.TIMER)

    def trace(self, kind: str, **data: Any) -> None:
        """Record a trace entry attributed to this process."""
        self.sim.trace.record(self.sim.now, kind, self.pid, **data)

    # -- internal ----------------------------------------------------------

    def _deliver(self, msg: "Message") -> None:
        """Network-facing delivery entry point (counts, then dispatches)."""
        if self.halted:
            return
        self.delivered_count += 1
        self.on_message(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(pid={self.pid})"
