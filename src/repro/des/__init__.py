"""Deterministic discrete-event simulation kernel.

The substrate every experiment runs on: an event heap with a total order
(:mod:`~repro.des.engine`), cancellable timers (:mod:`~repro.des.events`),
named reproducible RNG streams (:mod:`~repro.des.rng`), structured traces
(:mod:`~repro.des.trace`) and the sequential-process base class
(:mod:`~repro.des.process`).

The paper assumes an asynchronous message-passing system; this kernel plus
:mod:`repro.net` realizes exactly that model in simulation.
"""

from .engine import Simulator, run_all
from .errors import (
    SchedulingError,
    SimulationError,
    SimulationLimitExceeded,
)
from .events import Event, EventPriority, Timer
from .process import SimProcess
from .rng import RngRegistry
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventPriority",
    "RngRegistry",
    "SchedulingError",
    "SimProcess",
    "SimulationError",
    "SimulationLimitExceeded",
    "Simulator",
    "Timer",
    "TraceRecord",
    "TraceRecorder",
    "run_all",
]
