"""Structured trace recording.

Every interesting occurrence in a simulation — a send, a delivery, a
tentative checkpoint, a finalization, a storage write — is appended to a
:class:`TraceRecorder` as a :class:`TraceRecord`.  The trace serves three
masters:

* **tests** assert exact orderings (e.g. the paper's Figure 2 narrative);
* the **causality** package replays traces to build happened-before graphs
  and check global-checkpoint consistency;
* the **metrics** package derives series (queue length over time, etc.).

Records are cheap tuples-with-names; filtering helpers return lists so tests
can index and slice naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated timestamp.
    kind:
        Dotted event-kind string, e.g. ``"ckpt.tentative"``, ``"msg.send"``,
        ``"storage.write.start"``.  Dots give a cheap hierarchy that
        ``TraceRecorder.filter(prefix=...)`` exploits.
    process:
        Integer process id the record belongs to, or ``-1`` for records not
        attributable to a process (e.g. the storage server).
    data:
        Free-form payload mapping; keys are record-kind specific and are
        documented where the record is emitted.
    seq:
        Global insertion index, which totally orders records even within one
        instant.
    """

    time: float
    kind: str
    process: int
    data: dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(t={self.time:.6g}, {self.kind!r}, "
                f"p={self.process}, {self.data})")


class TraceRecorder:
    """Append-only store of :class:`TraceRecord` entries with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._seq = 0
        #: Optional live subscribers: callables invoked on every record.
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        #: Kind-filtered subscribers: called only for matching records,
        #: so rare-kind listeners stay off the per-message hot path.
        self._kind_subscribers: dict[str, list[Callable[[TraceRecord],
                                                        None]]] = {}

    # -- recording ---------------------------------------------------------

    def record(self, time: float, kind: str, process: int = -1, /,
               **data: Any) -> None:
        """Append a record (no-op when the recorder is disabled)."""
        if not self.enabled:
            return
        self._seq += 1
        rec = TraceRecord(time=time, kind=kind, process=process,
                          data=data, seq=self._seq)
        self.records.append(rec)
        for sub in self._subscribers:
            sub(rec)
        kind_subs = self._kind_subscribers.get(kind)
        if kind_subs:
            for sub in kind_subs:
                sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None], *,
                  kinds: tuple[str, ...] | None = None) -> None:
        """Register a live subscriber (metrics collectors use this).

        With ``kinds``, the callable fires only for records of those
        exact kinds (no prefix matching) — use this for listeners that
        ignore the high-volume ``msg.*`` traffic.
        """
        if kinds is None:
            self._subscribers.append(fn)
        else:
            for kind in kinds:
                self._kind_subscribers.setdefault(kind, []).append(fn)

    # -- querying ----------------------------------------------------------

    def filter(self, kind: str | None = None, *, prefix: str | None = None,
               process: int | None = None) -> list[TraceRecord]:
        """Return records matching all given criteria.

        ``kind`` matches exactly; ``prefix`` matches ``kind == prefix`` or
        ``kind.startswith(prefix + '.')`` (so ``prefix="msg"`` catches
        ``msg.send`` and ``msg.deliver`` but not ``msgx``).
        """
        out = []
        dot = None if prefix is None else prefix + "."
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if prefix is not None and not (rec.kind == prefix
                                           or rec.kind.startswith(dot)):
                continue
            if process is not None and rec.process != process:
                continue
            out.append(rec)
        return out

    def first(self, kind: str, process: int | None = None) -> TraceRecord | None:
        """First record of ``kind`` (optionally for one process), or None."""
        for rec in self.records:
            if rec.kind == kind and (process is None or rec.process == process):
                return rec
        return None

    def last(self, kind: str, process: int | None = None) -> TraceRecord | None:
        """Last record of ``kind`` (optionally for one process), or None."""
        for rec in reversed(self.records):
            if rec.kind == kind and (process is None or rec.process == process):
                return rec
        return None

    def count(self, kind: str | None = None, *, prefix: str | None = None,
              process: int | None = None) -> int:
        """Number of matching records."""
        return len(self.filter(kind, prefix=prefix, process=process))

    def kinds(self) -> dict[str, int]:
        """Histogram of record kinds (diagnostics and quick assertions)."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def signature(self) -> tuple[tuple[float, str, int], ...]:
        """A hashable fingerprint of the trace (time, kind, process).

        Two runs with identical configuration and seed must produce equal
        signatures — the determinism invariant's test hook.
        """
        return tuple((r.time, r.kind, r.process) for r in self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder(records={len(self.records)}, enabled={self.enabled})"
