"""Exception types raised by the discrete-event simulation kernel.

Keeping kernel errors in a dedicated module lets callers catch simulation
faults (``SimulationError``) separately from programming errors without
importing the engine itself.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for all errors raised by the DES kernel."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (e.g. in the past)."""


class SimulationLimitExceeded(SimulationError):
    """The simulation exceeded a configured safety limit.

    Raised when ``max_events`` or ``until`` guards trip while the caller
    asked for strict behaviour.  Experiments use these limits as watchdogs
    against protocol-level livelock (e.g. a checkpointing round that never
    converges would otherwise spin forever).
    """


class StoppedSimulation(SimulationError):
    """Internal signal used by :meth:`Simulator.stop` to unwind the loop."""
