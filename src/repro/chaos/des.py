"""DES fault injection: the plan interposed on the simulated network.

:class:`DesChaosInjector` chains onto ``Network.delivery_gate`` (the same
idiom the failure and partition injectors use), draws every fault decision
from a named ``sim.rng`` stream (``chaos.<kind>.<index>``), and therefore
replays byte-identically for the same seed + plan.  Partition faults
delegate to the existing :class:`~repro.recovery.partition.PartitionInjector`
(park + redeliver at heal); crash faults are composed by the cell runner
through :class:`~repro.recovery.restart.RecoveryManager`; storage faults
wrap ``StableStorage.write``.

``run_des_cell`` is one matrix cell: build the standard small experiment,
install the injector before the first event, run to quiescence, and judge
the outcome — *consistent* (the independent verifier finds no orphans and
no host recorded a protocol anomaly) and *recovered* (the run quiesced and
at least one checkpoint round finalized everywhere strictly after the last
fault ended — the paper's Theorem 1 convergence, demonstrated post-fault).
"""

from __future__ import annotations

from typing import Any

from ..harness.executor import config_key
from ..harness.experiment import ExperimentConfig, run_experiment
from ..net.message import Message
from ..net.network import Network
from ..recovery.partition import PartitionInjector
from ..recovery.restart import RecoveryManager
from .plan import ChaosError, Fault, FaultPlan, fault_plan_key, single_fault_plan

#: Spacing for duplicate/reorder/delay redeliveries (mirrors the partition
#: injector's heal spacing: deterministic order, no zero-duration bursts).
REDELIVERY_SPACING = 1e-6

#: Crash cells: detection + restart time before system-wide rollback.
CRASH_RECOVERY_DELAY = 5.0


class DesChaosInjector:
    """Interpose a :class:`FaultPlan` on a simulated network."""

    def __init__(self, sim: Any, network: Network, plan: FaultPlan) -> None:
        plan.validate()
        self.sim = sim
        self.network = network
        self.plan = plan
        #: fault-kind -> number of injections actually performed.
        self.injected: dict[str, int] = {}
        self._wire = plan.wire_faults()
        self._rngs = {i: sim.rng.stream(f"chaos.{f.kind}.{i}")
                      for i, f in self._wire + plan.storage_faults()}
        #: (src, dst) -> held message, per reorder fault index.
        self._reorder_held: dict[int, dict[tuple[int, int], Message]] = {
            i: {} for i, f in self._wire if f.kind == "reorder"}
        # Partitions ride on the proven injector (park + redeliver at heal).
        self._partitions: PartitionInjector | None = None
        if plan.partition_faults():
            self._partitions = PartitionInjector(sim, network)
            for _, f in plan.partition_faults():
                self._partitions.partition(f.group_a, f.group_b,
                                           f.start, f.end)
        # Wire gate chains last so it runs first (innermost faults win).
        self._prev_gate = network.delivery_gate
        if self._wire:
            network.delivery_gate = self._gate
            for i, f in self._wire:
                if f.kind == "reorder":
                    # Window close flushes any message still held for the
                    # swap — nothing may stay parked into quiescence.
                    sim.schedule_at(f.end, lambda i=i: self._flush_reorder(i))

    # -- bookkeeping -------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def total_injected(self) -> int:
        """Total number of fault injections across all kinds."""
        return sum(self.injected.values())

    # -- the delivery gate -------------------------------------------------

    def _gate(self, msg: Message) -> bool:
        now = self.sim.now
        for i, fault in self._wire:
            if not fault.active(now) or msg.kind not in fault.frames:
                continue
            rng = self._rngs[i]
            if fault.kind == "drop":
                if rng.random() < fault.p:
                    self._count("drop")
                    msg.meta["drop_cause"] = "chaos.drop"
                    self.sim.trace.record(now, "chaos.drop", msg.dst,
                                          uid=msg.uid, src=msg.src,
                                          kind=msg.kind)
                    return False
            elif fault.kind == "duplicate":
                # A copy is never itself duplicated: redelivery re-runs
                # this gate (crash/partition state may have changed), and
                # without the marker a p=1.0 window turns one message
                # into a self-replicating chain of REDELIVERY_SPACING-
                # spaced copies — millions of events before the window
                # closes (found by `repro fuzz`; the meta dict is
                # per-message whenever an injector is installed, so the
                # stamp cannot cross-contaminate interned piggybacks).
                if "chaos.duplicated" not in msg.meta \
                        and rng.random() < fault.p:
                    self._count("duplicate")
                    msg.meta["chaos.duplicated"] = True
                    self.sim.trace.record(now, "chaos.duplicate", msg.dst,
                                          uid=msg.uid, src=msg.src,
                                          kind=msg.kind)
                    self.sim.schedule(REDELIVERY_SPACING,
                                      lambda m=msg: self._redeliver(m))
            elif fault.kind == "delay":
                if rng.random() < fault.p:
                    self._count("delay")
                    msg.meta["drop_cause"] = "chaos.delay"
                    self.sim.trace.record(now, "chaos.delay", msg.dst,
                                          uid=msg.uid, src=msg.src,
                                          kind=msg.kind, delay=fault.delay)
                    self.sim.schedule(fault.delay,
                                      lambda m=msg: self._redeliver(m))
                    return False
            elif fault.kind == "reorder":
                held = self._reorder_held[i]
                key = (msg.src, msg.dst)
                parked = held.get(key)
                if parked is not None:
                    # The successor arrived: deliver it now (fall through)
                    # and release the held one right after — order swapped.
                    del held[key]
                    self.sim.schedule(REDELIVERY_SPACING,
                                      lambda m=parked: self._redeliver(m))
                elif rng.random() < fault.p:
                    self._count("reorder")
                    held[key] = msg
                    msg.meta["drop_cause"] = "chaos.reorder"
                    self.sim.trace.record(now, "chaos.reorder", msg.dst,
                                          uid=msg.uid, src=msg.src,
                                          kind=msg.kind)
                    return False
        if self._prev_gate is not None:
            return self._prev_gate(msg)
        return True

    def _redeliver(self, msg: Message) -> None:
        """Deliver a duplicated/delayed/reordered message now.

        Re-runs the *full* gate chain first — the destination may have
        crashed or a partition begun since the message was intercepted
        (mirrors ``PartitionInjector._redeliver``).
        """
        msg.meta.pop("drop_cause", None)
        if not self.network.delivery_gate(msg):
            return
        msg.deliver_time = self.sim.now
        self.sim.trace.record(self.sim.now, "msg.deliver", msg.dst,
                              uid=msg.uid, src=msg.src, kind=msg.kind,
                              bytes=msg.total_bytes, redelivered=True)
        self.network.processes[msg.dst]._deliver(msg)

    def _flush_reorder(self, index: int) -> None:
        held = self._reorder_held[index]
        for j, key in enumerate(sorted(held)):
            self.sim.schedule((j + 1) * REDELIVERY_SPACING,
                              lambda m=held[key]: self._redeliver(m))
        held.clear()

    # -- storage faults ----------------------------------------------------

    def attach_storage(self, storage: Any) -> None:
        """Wrap ``storage.write`` with the plan's storage faults.

        * ``slow-flush`` — the write carries ``delay`` seconds of extra
          service time (modelled as the equivalent extra bytes at the
          disk's bandwidth);
        * ``torn-write`` / ``fsync-fail`` — the first attempt is wasted
          (an equal-size ``chaos:`` write occupies the disk) and the real
          write follows, modelling interrupt-and-retry.
        """
        faults = self.plan.storage_faults()
        if not faults:
            return
        inner = storage.write

        def write(pid: int, nbytes: int, label: str = "",
                  callback: Any = None) -> Any:
            now = self.sim.now
            extra = 0
            for i, fault in faults:
                if not fault.active(now):
                    continue
                if self._rngs[i].random() >= fault.p:
                    continue
                self._count(fault.kind)
                self.sim.trace.record(now, "chaos.storage", pid,
                                      fault=fault.kind, label=label)
                if fault.kind == "slow-flush":
                    extra += int(fault.delay * storage.disk.bandwidth)
                else:  # torn-write / fsync-fail: wasted first attempt
                    inner(pid, nbytes, label=f"chaos:{fault.kind}:{label}")
            return inner(pid, nbytes + extra, label=label, callback=callback)

        storage.write = write


# -- the standard DES cell -------------------------------------------------

#: Cell geometry: small enough to run in well under a second, long enough
#: for several checkpoint rounds before, during and after the fault window.
DES_N = 4
DES_HORIZON = 120.0
DES_INTERVAL = 30.0
DES_TIMEOUT = 10.0


def default_des_plan(kind: str, seed: int = 0) -> FaultPlan:
    """The canonical one-fault plan the matrix runs for ``kind``."""
    if kind == "drop":
        return single_fault_plan("drop", seed, p=0.15, start=10.0, end=70.0)
    if kind == "duplicate":
        return single_fault_plan("duplicate", seed, p=0.25,
                                 start=10.0, end=70.0)
    if kind == "reorder":
        return single_fault_plan("reorder", seed, p=0.3,
                                 start=10.0, end=70.0)
    if kind == "delay":
        return single_fault_plan("delay", seed, p=0.25, start=10.0,
                                 end=70.0, delay=3.0)
    if kind == "partition":
        return single_fault_plan("partition", seed, start=20.0, end=50.0,
                                 group_a=(0, 1),
                                 group_b=tuple(range(2, DES_N)))
    if kind == "crash":
        return single_fault_plan("crash", seed, pid=DES_N - 1, at=40.0)
    if kind == "torn-write":
        return single_fault_plan("torn-write", seed, p=0.5,
                                 start=5.0, end=80.0)
    if kind == "fsync-fail":
        return single_fault_plan("fsync-fail", seed, p=0.5,
                                 start=5.0, end=80.0)
    if kind == "slow-flush":
        return single_fault_plan("slow-flush", seed, p=0.5,
                                 start=5.0, end=80.0, delay=0.5)
    raise ChaosError(f"unknown fault kind {kind!r}")


def _last_fault_end(plan: FaultPlan) -> float:
    """Simulated time after which the system runs fault-free."""
    end = 0.0
    for f in plan:
        if f.kind == "crash":
            end = max(end, (f.at or 0.0) + CRASH_RECOVERY_DELAY)
        elif f.end is not None:
            end = max(end, f.end)
        else:
            end = max(end, f.start)
    return end


def run_des_cell(kind: str, seed: int = 0,
                 plan: FaultPlan | None = None,
                 tracer: Any | None = None,
                 cache: Any | None = None) -> dict[str, Any]:
    """Run one DES matrix cell; returns a picklable outcome record.

    ``cache`` (a :class:`~repro.harness.executor.ResultCache`) memoizes the
    outcome record.  The key salts in :func:`fault_plan_key` — the config
    hash alone is blind to the injected plan, and two cells differing only
    in fault plan must never collide on a cached result.
    """
    if plan is None:
        plan = default_des_plan(kind, seed)
    plan.validate()
    cfg = ExperimentConfig(
        protocol="optimistic", n=DES_N, seed=seed, horizon=DES_HORIZON,
        checkpoint_interval=DES_INTERVAL, timeout=DES_TIMEOUT,
        state_bytes=1_000_000,
        workload_kwargs={"rate": 1.0, "msg_size": 512})
    key = ""
    if cache is not None and tracer is None:
        key = config_key(
            cfg, salt=f"chaos-cell:{kind}:{fault_plan_key(plan)}")
        hit = cache.load_json(key)
        if hit is not None and "cell" in hit:
            return hit["cell"]
    holder: dict[str, Any] = {}

    def before_run(sim: Any, net: Any, storage: Any, runtime: Any) -> None:
        injector = DesChaosInjector(sim, net, plan)
        injector.attach_storage(storage)
        holder["injector"] = injector
        if plan.crash_faults():
            rm = RecoveryManager(runtime)
            for _, f in plan.crash_faults():
                rm.crash_and_recover(f.pid, f.at,
                                     recovery_delay=CRASH_RECOVERY_DELAY)
            holder["recovery"] = rm

    result = run_experiment(cfg, tracer=tracer, before_run=before_run)
    injector: DesChaosInjector = holder["injector"]
    rm: RecoveryManager | None = holder.get("recovery")
    injected = dict(injector.injected)
    dropped_by_cause = result.network.dropped_by_cause()
    if plan.partition_faults():
        # Partition parks are performed by the delegated PartitionInjector;
        # its per-cause drop counter is the injection count.
        injected["partition"] = dropped_by_cause.get("partition", 0)
    if rm is not None:
        injected["crash"] = len(rm.events)
    anomalies = result.runtime.anomalies()
    consistent = result.consistent and not anomalies
    fault_end = _last_fault_end(plan)
    # Convergence after the faults: some round must have finalized at every
    # process strictly after the last fault ended (Theorem 1 post-fault).
    runtime = result.runtime
    post_fault_rounds = 0
    for seq in runtime.finalized_seqs():
        if seq == 0:
            continue
        ends = [runtime.hosts[pid].finalized[seq].finalized_at
                for pid in runtime.hosts]
        if min(ends) > fault_end:
            post_fault_rounds += 1
    recovered = (not result.truncated and post_fault_rounds >= 1
                 and sum(injected.values()) > 0)
    if rm is not None:
        recovered = recovered and len(rm.events) == len(
            list(plan.crash_faults()))
    cell = {
        "runtime": "des",
        "fault": kind,
        "seed": seed,
        "consistent": consistent,
        "recovered": recovered,
        "truncated": result.truncated,
        "injected": injected,
        "recovered_actions": {
            "redelivered": sum(1 for rec in result.sim.trace.records
                               if rec.kind == "msg.deliver"
                               and rec.data.get("redelivered")),
            "rollbacks": sum(1 for rec in result.sim.trace.records
                             if rec.kind == "ckpt.rollback"),
        },
        "rounds": len([s for s in runtime.finalized_seqs() if s > 0]),
        "post_fault_rounds": post_fault_rounds,
        "anomalies": anomalies,
        "orphans": sum(result.orphans.values()),
        "dropped_by_cause": dropped_by_cause,
        "makespan": result.sim.now,
    }
    if cache is not None and key:
        cache.store_json(key, {"cell": cell})
    return cell
