"""repro.chaos — the unified fault-injection engine.

One fault-plan vocabulary (:mod:`~repro.chaos.plan`), two interposers —
the DES delivery-gate injector (:mod:`~repro.chaos.des`) and the live
endpoint/storage injector (:mod:`~repro.chaos.live`) — and the
conformance matrix (:mod:`~repro.chaos.matrix`) that runs every fault
kind through both runtimes and proves, per cell, that the optimistic
protocol stayed consistent (Theorem 2: no orphans) and recovered
(Theorem 1: checkpoint rounds keep finalizing after the faults end).

See docs/ROBUSTNESS.md for the fault-plan format and the matrix's
acceptance semantics; ``repro chaos`` is the CLI entry point.

The DES and matrix symbols load lazily (PEP 562): live worker processes
import ``repro.chaos.live`` on their startup path and must not pay for
the simulator/harness import chain they never use.
"""

from .plan import (
    ALL_KINDS,
    CRASH_KINDS,
    ChaosError,
    Fault,
    FaultPlan,
    PARTITION_KINDS,
    STORAGE_KINDS,
    WIRE_KINDS,
    fault_plan_key,
    single_fault_plan,
)

#: Lazily-resolved exports: name -> defining submodule.
_LAZY = {
    "DesChaosInjector": "des",
    "default_des_plan": "des",
    "run_des_cell": "des",
    "ChaosEndpoint": "live",
    "ChaosStorage": "live",
    "chaos_storage": "live",
    "lost_messages": "live",
    "CellResult": "matrix",
    "DEFAULT_KINDS": "matrix",
    "MatrixReport": "matrix",
    "default_live_plan": "matrix",
    "run_live_cell": "matrix",
    "run_matrix": "matrix",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ALL_KINDS",
    "CRASH_KINDS",
    "CellResult",
    "ChaosEndpoint",
    "ChaosError",
    "ChaosStorage",
    "DEFAULT_KINDS",
    "DesChaosInjector",
    "Fault",
    "FaultPlan",
    "MatrixReport",
    "PARTITION_KINDS",
    "STORAGE_KINDS",
    "WIRE_KINDS",
    "chaos_storage",
    "default_des_plan",
    "default_live_plan",
    "fault_plan_key",
    "lost_messages",
    "run_des_cell",
    "run_live_cell",
    "run_matrix",
    "single_fault_plan",
]
