"""The chaos conformance matrix: every fault kind × both runtimes.

``run_matrix`` is what ``repro chaos`` executes.  Each cell injects one
fault kind — through the DES interposer (:mod:`repro.chaos.des`) or the
live interposer (:mod:`repro.chaos.live`) — and then *proves* the run
survived it:

* **consistent** — the independent verifier (DES) or the journal
  conformance replay (live) found every complete global checkpoint
  orphan-free (the paper's Theorem 2), with no protocol anomalies;
* **recovered** — faults were actually injected, checkpoint rounds kept
  finalizing after the fault window closed (Theorem 1 convergence), and
  every recovery obligation specific to the kind held: wire faults lost
  no message for good (:func:`~repro.chaos.live.lost_messages`), storage
  faults were healed by the bounded write retry, crashes completed the
  rollback-and-restart cycle.

The matrix must *discriminate*: an unknown fault kind yields a failing
cell (not a silent skip), and running the live wire cells with the
resilience layer disabled (``retries=False``) makes the drop cell lose
messages and fail — evidence the green matrix is earned, not vacuous.

DES cells are pure functions of (kind, seed) and fan out over the
harness executor's spawn-safe worker pool; live cells run wall-clock
time serially so their timers do not contend.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..harness.executor import JobCancelled, JobError, map_jobs
from ..obs import Tracer
from .des import run_des_cell
from .plan import (
    ALL_KINDS,
    ChaosError,
    CRASH_KINDS,
    FaultPlan,
    STORAGE_KINDS,
    single_fault_plan,
)

#: The full conformance matrix: one cell per kind per runtime.
DEFAULT_KINDS: tuple[str, ...] = ALL_KINDS

#: Live cell geometry (kept small: the whole live row stays under a
#: minute even on a loaded CI box).
LIVE_N = 3
LIVE_INTERVAL = 0.35
LIVE_TIMEOUT = 0.15
LIVE_RATE = 30.0
#: Sends inside this trailing window may legitimately race shutdown.
LIVE_GRACE = 1.0


@dataclass
class CellResult:
    """Outcome of one (runtime, fault kind) matrix cell."""

    runtime: str
    fault: str
    consistent: bool = False
    recovered: bool = False
    injected: dict[str, int] = field(default_factory=dict)
    recovered_actions: dict[str, int] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.consistent and self.recovered and self.error is None

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable cell verdict (the `--format json` shape)."""
        return {
            "runtime": self.runtime,
            "fault": self.fault,
            "ok": self.ok,
            "consistent": self.consistent,
            "recovered": self.recovered,
            "injected": dict(sorted(self.injected.items())),
            "recovered_actions": dict(sorted(
                self.recovered_actions.items())),
            "detail": self.detail,
            "error": self.error,
        }


@dataclass
class MatrixReport:
    """All cells of one ``repro chaos`` invocation."""

    cells: list[CellResult]
    seed: int
    transport: str

    @property
    def ok(self) -> bool:
        return bool(self.cells) and all(c.ok for c in self.cells)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable report (the `--format json` shape)."""
        return {
            "seed": self.seed,
            "transport": self.transport,
            "ok": self.ok,
            "cells": [c.as_dict() for c in self.cells],
        }

    def render(self) -> str:
        """Human-readable matrix table."""
        lines = [f"chaos matrix — seed={self.seed} "
                 f"transport={self.transport}",
                 f"  {'fault':<12} {'runtime':<8} {'consistent':<11} "
                 f"{'recovered':<10} {'injected':<10} result"]
        for c in self.cells:
            injected = sum(c.injected.values())
            verdict = "OK" if c.ok else (
                f"FAILED ({c.error})" if c.error else "FAILED")
            lines.append(
                f"  {c.fault:<12} {c.runtime:<8} "
                f"{str(c.consistent):<11} {str(c.recovered):<10} "
                f"{injected:<10} {verdict}")
        lines.append(f"  RESULT: {'OK' if self.ok else 'FAILED'} "
                     f"({sum(1 for c in self.cells if c.ok)}/"
                     f"{len(self.cells)} cells)")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# DES cells
# --------------------------------------------------------------------------


def _des_cell(item: tuple[str, int]) -> dict[str, Any]:
    """Spawn-safe worker-pool entry: one DES cell as a picklable dict."""
    kind, seed = item
    return run_des_cell(kind, seed=seed)


def _des_cell_result(kind: str, outcome: Any) -> CellResult:
    if isinstance(outcome, JobCancelled):
        return CellResult(runtime="des", fault=kind, error="cancelled")
    if isinstance(outcome, JobError):
        return CellResult(runtime="des", fault=kind, error=outcome.error)
    return CellResult(
        runtime="des", fault=kind,
        consistent=outcome["consistent"], recovered=outcome["recovered"],
        injected=outcome["injected"],
        recovered_actions=outcome["recovered_actions"],
        detail={"rounds": outcome["rounds"],
                "post_fault_rounds": outcome["post_fault_rounds"],
                "orphans": outcome["orphans"],
                "dropped_by_cause": outcome["dropped_by_cause"],
                "makespan": outcome["makespan"]})


# --------------------------------------------------------------------------
# live cells
# --------------------------------------------------------------------------


def default_live_plan(kind: str, seed: int,
                      duration: float) -> FaultPlan:
    """The canonical one-fault live plan for ``kind`` (crash excluded —
    live crashes use the supervisor's SIGKILL machinery, not a plan)."""
    lo, hi = 0.2 * duration, 0.6 * duration
    if kind == "drop":
        return single_fault_plan("drop", seed, p=0.25, start=lo, end=hi)
    if kind == "duplicate":
        return single_fault_plan("duplicate", seed, p=0.4,
                                 start=lo, end=hi)
    if kind == "reorder":
        return single_fault_plan("reorder", seed, p=0.5, start=lo, end=hi)
    if kind == "delay":
        return single_fault_plan("delay", seed, p=0.4, start=lo, end=hi,
                                 delay=0.2)
    if kind == "partition":
        return single_fault_plan("partition", seed, start=lo, end=hi,
                                 group_a=(0,),
                                 group_b=tuple(range(1, LIVE_N)))
    if kind == "torn-write":
        return single_fault_plan("torn-write", seed, p=0.5,
                                 start=0.1 * duration, end=0.8 * duration)
    if kind == "fsync-fail":
        return single_fault_plan("fsync-fail", seed, p=0.5,
                                 start=0.1 * duration, end=0.8 * duration)
    if kind == "slow-flush":
        return single_fault_plan("slow-flush", seed, p=0.5,
                                 start=0.1 * duration, end=0.8 * duration,
                                 delay=0.02)
    raise ChaosError(f"unknown fault kind {kind!r}")


def _chaos_evidence(run_dir: Path) -> tuple[dict[str, int], dict[str, int],
                                            int]:
    """Sum the per-worker run-end ``chaos`` journal events."""
    from ..live.journal import worker_events
    injected: dict[str, int] = {}
    actions: dict[str, int] = {}
    retried = 0
    for _pid, events in worker_events(run_dir).items():
        for ev in events:
            if ev["ev"] != "chaos":
                continue
            for k, v in ev.get("injected", {}).items():
                injected[k] = injected.get(k, 0) + v
            for k, v in ev.get("resilience", {}).items():
                actions[k] = actions.get(k, 0) + v
            actions["host_dup_dropped"] = (
                actions.get("host_dup_dropped", 0) + ev.get("dup_dropped", 0))
            retried += ev.get("retried_writes", 0)
    return injected, actions, retried


def run_live_cell(kind: str, *, seed: int = 0, transport: str = "local",
                  duration: float = 2.5, retries: bool = True,
                  run_dir: str | Path | None = None) -> CellResult:
    """Run one live matrix cell end-to-end (run + conformance replay)."""
    from ..live import LiveRunConfig, run_live
    from .live import lost_messages

    def execute(cell_dir: Path) -> CellResult:
        cfg = LiveRunConfig(
            n=LIVE_N, transport=transport, duration=duration,
            checkpoint_interval=LIVE_INTERVAL, timeout=LIVE_TIMEOUT,
            rate=LIVE_RATE, seed=seed, run_dir=str(cell_dir),
            resilience=retries)
        if kind in CRASH_KINDS:
            cfg.crash_at = 0.45 * duration
            cfg.crash_pid = cfg.n - 1
        else:
            cfg.chaos = default_live_plan(kind, seed, duration)
        report = run_live(cfg)
        injected, actions, retried = _chaos_evidence(cell_dir)
        detail: dict[str, Any] = {
            "rounds": len(report.conformance.rounds_completed),
            "orphans": sum(len(o)
                           for o in report.conformance.orphans.values()),
            "retried_writes": retried,
        }
        if kind in CRASH_KINDS:
            injected["crash"] = 1 if report.crash is not None else 0
            if report.crash is not None:
                actions["rollbacks"] = report.conformance.rollbacks
                detail["recovered_seq"] = report.crash.recovered_seq
            recovered = report.crash is not None and report.ok
        else:
            recovered = (report.ok and sum(injected.values()) > 0)
            if kind in STORAGE_KINDS and kind != "slow-flush":
                # Every failed attempt must have been healed by a retry.
                recovered = recovered and retried >= 1
            if kind not in STORAGE_KINDS:
                # Delivery completeness: with the resilience layer on, no
                # injected wire fault may lose an app message for good.
                lost = lost_messages(cell_dir, grace=LIVE_GRACE)
                detail["lost_messages"] = len(lost)
                recovered = recovered and not lost
        return CellResult(
            runtime="live", fault=kind,
            consistent=report.conformance.consistent,
            recovered=recovered, injected=injected,
            recovered_actions=actions, detail=detail)

    try:
        if run_dir is not None:
            path = Path(run_dir)
            path.mkdir(parents=True, exist_ok=True)
            return execute(path)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as td:
            return execute(Path(td))
    except ChaosError as exc:
        return CellResult(runtime="live", fault=kind, error=str(exc))
    except Exception as exc:  # a cell failure must not kill the matrix
        return CellResult(runtime="live", fault=kind,
                          error=f"{type(exc).__name__}: {exc}")


# --------------------------------------------------------------------------
# the matrix
# --------------------------------------------------------------------------


def run_matrix(kinds: Sequence[str] = DEFAULT_KINDS,
               runtimes: Sequence[str] = ("des", "live"), *,
               seed: int = 0, transport: str = "local",
               duration: float = 2.5, retries: bool = True,
               jobs: int = 1, run_root: str | Path | None = None,
               tracer: Tracer | None = None,
               cancel_event: Any = None) -> MatrixReport:
    """Run the fault × runtime conformance matrix.

    ``retries=False`` disables the live resilience layer — the
    discrimination mode: seeded drops then lose messages for good and
    the drop cell must fail.  ``run_root`` keeps every live cell's run
    directory (journals, checkpoints, traces) for post-mortems.

    ``cancel_event`` (a :class:`threading.Event`) cancels cooperatively:
    DES cells stop dispatching through the executor's cancel hook, live
    cells stop between cells; every skipped cell reports
    ``error="cancelled"`` so a cancelled matrix is visibly partial, not
    silently green.
    """

    def cancelled() -> bool:
        return cancel_event is not None and cancel_event.is_set()

    cells: list[CellResult] = []
    known = [k for k in kinds if k in ALL_KINDS]
    unknown = [k for k in kinds if k not in ALL_KINDS]
    if "des" in runtimes:
        outcomes = map_jobs(_des_cell, [(k, seed) for k in known],
                            jobs=jobs, cancel_event=cancel_event)
        cells.extend(_des_cell_result(k, outcome)
                     for k, outcome in zip(known, outcomes))
        cells.extend(CellResult(
            runtime="des", fault=k,
            error=f"unknown fault kind {k!r}") for k in unknown)
    if "live" in runtimes:
        for k in known:
            if cancelled():
                cells.append(CellResult(runtime="live", fault=k,
                                        error="cancelled"))
                continue
            cell_dir = (Path(run_root) / f"cell-{transport}-{k}"
                        if run_root is not None else None)
            cells.append(run_live_cell(
                k, seed=seed, transport=transport, duration=duration,
                retries=retries, run_dir=cell_dir))
        cells.extend(CellResult(
            runtime="live", fault=k,
            error=f"unknown fault kind {k!r}") for k in unknown)
    report = MatrixReport(cells=cells, seed=seed, transport=transport)
    if tracer is not None and tracer.enabled:
        # Deterministic summary stream: cell index as the timestamp, no
        # wall-clock values — reruns emit byte-identical events.
        for i, cell in enumerate(report.cells):
            tracer.point("chaos.cell", float(i), fault=cell.fault,
                         cell_runtime=cell.runtime, ok=cell.ok,
                         injected=sum(cell.injected.values()),
                         recovered=cell.recovered,
                         consistent=cell.consistent)
    return report
