"""Live-runtime fault injection: endpoint and storage interposers.

The live half of the chaos engine (the DES half is
:mod:`repro.chaos.des`).  The same :class:`~repro.chaos.plan.FaultPlan`
vocabulary drives both; here faults act on real asyncio wall time.

Layering matters: the chaos endpoint sits *below* the resilience layer
(:mod:`repro.live.resilience`), i.e. ::

    LiveHost -> ResilientEndpoint -> ChaosEndpoint -> real transport

so retransmitted frames traverse the faulty wire again — exactly like a
lossy network — and ``ack`` frames pass untouched (a fault's ``frames``
filter only matches ``app``/``ctl``), which keeps retransmission storms
bounded.

Storage faults hook :attr:`repro.live.storage.FileStableStorage.fault_hook`:
``torn-write`` leaves a partial ``*.tmp`` file then fails the attempt,
``fsync-fail`` fails the attempt outright, ``slow-flush`` stalls the
write — the first two are healed by the storage layer's bounded retry,
proving the atomic tmp+rename discipline.

This module is *not* inside the REP001/REP002-exempt live packages, so
its wall-clock and RNG uses carry explicit, audited suppressions (see
``tests/chaos/test_lint_audit.py``).
"""

from __future__ import annotations

import asyncio
import random
import time
from pathlib import Path
from typing import Any

from ..live.journal import worker_events
from ..live.storage import FileStableStorage
from ..live.transport import Endpoint
from ..obs import NULL_TRACER, Tracer
from .plan import FaultPlan, PARTITION_KINDS, STORAGE_KINDS, WIRE_KINDS

#: Gap between an original frame and its injected duplicate (seconds).
DUP_SPACING = 0.01


class ChaosEndpoint(Endpoint):
    """Seeded fault interposer around a live transport endpoint.

    Only the *send* side injects (each worker corrupts its own outbound
    wire, like a faulty NIC); the receive side is a passthrough.  Held
    frames (reorder, partition) are flushed no later than their fault
    window's end, so no frame is held forever.
    """

    def __init__(self, inner: Endpoint, plan: FaultPlan, *,
                 seed: int = 0, tracer: Tracer | None = None) -> None:
        plan.validate()
        self.inner = inner
        self.pid = inner.pid
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: fault kind -> number of injections performed.
        self.injected: dict[str, int] = {}
        # Seeded per (plan seed, pid): reruns of a local-transport cell
        # draw the same fault decisions in the same per-worker order.
        self._rng = random.Random((plan.seed << 16) ^ (self.pid + 1))  # repro: allow[REP002] chaos faults are seeded wall-clock injection, not simulated state
        self._loop = asyncio.get_event_loop()
        self._t0 = self._loop.time()
        #: fault index -> held frame awaiting a swap partner (reorder).
        self._reorder_held: dict[int, dict[str, Any]] = {}
        #: fault index -> frames parked until the partition heals.
        self._partition_held: dict[int, list[dict[str, Any]]] = {}
        self._heal_scheduled: set[int] = set()
        self._timers: list[asyncio.TimerHandle] = []
        self._closed = False

    # -- bookkeeping -------------------------------------------------------

    def _now(self) -> float:
        """Seconds since the endpoint (≈ the run) started."""
        return self._loop.time() - self._t0

    def _count(self, kind: str, **attrs: Any) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.tracer.enabled:
            self.tracer.point(f"chaos.{kind}", self._loop.time(),
                              pid=self.pid, **attrs)

    def _later(self, delay: float, fn: Any, *args: Any) -> None:
        self._timers.append(self._loop.call_later(delay, fn, *args))

    # -- send-side injection -----------------------------------------------

    def send(self, frame: dict[str, Any]) -> None:
        if self._closed:
            return
        t = frame.get("t")
        if t not in ("app", "ctl") or not self.plan:
            self.inner.send(frame)
            return
        now = self._now()
        for index, fault in enumerate(self.plan.faults):
            if t not in fault.frames or not fault.active(now):
                continue
            if fault.kind in PARTITION_KINDS:
                if self._crosses(fault, frame):
                    self._park(index, fault, frame)
                    return
                continue
            if fault.kind not in WIRE_KINDS:
                continue
            if self._rng.random() >= fault.p:
                continue
            # First triggered fault decides this frame's fate.
            if fault.kind == "drop":
                self._count("drop", frame=t)
                return
            if fault.kind == "duplicate":
                self._count("duplicate", frame=t)
                self._later(DUP_SPACING, self.inner.send, dict(frame))
                break    # the original still goes out below
            if fault.kind == "delay":
                self._count("delay", frame=t, delay=fault.delay)
                self._later(fault.delay, self.inner.send, frame)
                return
            if fault.kind == "reorder":
                held = self._reorder_held.pop(index, None)
                if held is not None:
                    # Swap: this (later) frame first, the held one after.
                    self._count("reorder", frame=t)
                    self.inner.send(frame)
                    self.inner.send(held)
                    return
                self._reorder_held[index] = frame
                # Failsafe: never hold past the fault window.
                self._later(max(0.0, fault.end - now),
                            self._flush_reorder, index)
                return
        self.inner.send(frame)

    def _crosses(self, fault: Any, frame: dict[str, Any]) -> bool:
        """Does this frame cross the partition cut?"""
        src = frame.get("src", self.pid)
        dst = frame.get("dst")
        return ((src in fault.group_a and dst in fault.group_b)
                or (src in fault.group_b and dst in fault.group_a))

    def _park(self, index: int, fault: Any, frame: dict[str, Any]) -> None:
        """Hold a cross-cut frame until the partition heals."""
        self._partition_held.setdefault(index, []).append(frame)
        self._count("partition", frame=frame.get("t"))
        if index not in self._heal_scheduled:
            self._heal_scheduled.add(index)
            self._later(max(0.0, fault.end - self._now()),
                        self._heal, index)

    def _heal(self, index: int) -> None:
        """Partition window ended: release parked frames in send order."""
        held = self._partition_held.pop(index, [])
        if self._closed:
            return
        if held and self.tracer.enabled:
            self.tracer.point("chaos.heal", self._loop.time(),
                              pid=self.pid, released=len(held))
        for frame in held:
            self.inner.send(frame)

    def _flush_reorder(self, index: int) -> None:
        """Reorder window ended with a frame still held: let it go."""
        held = self._reorder_held.pop(index, None)
        if held is not None and not self._closed:
            self.inner.send(held)

    # -- passthrough -------------------------------------------------------

    async def recv(self) -> dict[str, Any] | None:
        return await self.inner.recv()

    async def drain(self) -> None:
        """Forward drain to the wrapped transport, if it has one."""
        drain = getattr(self.inner, "drain", None)
        if drain is not None:
            await drain()

    def close(self) -> None:
        self._closed = True
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self.inner.close()

    @property
    def epoch(self) -> int:
        """Delegate the TCP handshake epoch when the inner endpoint has one."""
        return getattr(self.inner, "epoch", 0)


# --------------------------------------------------------------------------
# storage faults
# --------------------------------------------------------------------------


class ChaosStorage:
    """Storage-fault injector installed as a ``FileStableStorage.fault_hook``.

    ``injected`` counts the faults actually fired; the storage layer's
    ``retried_writes`` counter is the matching recovery evidence.
    """

    def __init__(self, storage: FileStableStorage, plan: FaultPlan, *,
                 seed: int = 0) -> None:
        plan.validate()
        self.storage = storage
        self.faults = [f for _, f in plan.storage_faults()]
        self.injected: dict[str, int] = {}
        self._rng = random.Random((plan.seed << 16) ^ (seed + 0x5afe))  # repro: allow[REP002] seeded storage-fault draws against wall-clock windows
        self._t0 = time.monotonic()  # repro: allow[REP001] live chaos window clock, never feeds simulated state
        if self.faults:
            storage.fault_hook = self

    def __call__(self, label: str, attempt: int) -> None:
        """The hook: runs before every stable-storage write attempt."""
        now = time.monotonic() - self._t0  # repro: allow[REP001] live chaos window clock, never feeds simulated state
        for fault in self.faults:
            if not fault.active(now) or self._rng.random() >= fault.p:
                continue
            if fault.kind == "slow-flush":
                self.injected["slow-flush"] = (
                    self.injected.get("slow-flush", 0) + 1)
                time.sleep(fault.delay)
                continue
            if attempt > 0:
                # torn-write / fsync-fail hit the first attempt only, so
                # the bounded retry is guaranteed to heal the write.
                continue
            self.injected[fault.kind] = self.injected.get(fault.kind, 0) + 1
            if fault.kind == "torn-write":
                # Leave a partial tmp file behind: the atomic tmp+rename
                # discipline must ignore it on every read path.
                torn = self.storage.root / (
                    "torn-" + label.replace(":", "-") + ".json.tmp")
                torn.write_text('{"torn": tru', encoding="utf-8")
            raise OSError(f"chaos:{fault.kind}:{label}")


def chaos_storage(storage: FileStableStorage, plan: FaultPlan, *,
                  seed: int = 0) -> ChaosStorage:
    """Attach storage faults from ``plan`` to a live storage instance."""
    return ChaosStorage(storage, plan, seed=seed)


# --------------------------------------------------------------------------
# post-run evidence
# --------------------------------------------------------------------------


def lost_messages(run_dir: str | Path, *, grace: float = 1.0) -> list[int]:
    """App uids journaled as sent but never received anywhere.

    The delivery-completeness check for live wire-fault cells: with the
    resilience layer on, every injected drop/duplicate/reorder/partition
    must heal and this list is empty (modulo the trailing ``grace``
    seconds, where a send can race the shutdown broadcast).  With
    retries disabled, seeded drops show up here — the chaos matrix's
    discrimination signal.  Not meaningful for crash cells: frames to a
    dead worker are legitimately lost and rolled back.
    """
    sends: dict[int, float] = {}
    recvs: set[int] = set()
    last_wall = 0.0
    for _pid, events in worker_events(run_dir).items():
        for ev in events:
            wall = ev.get("wall", 0.0)
            last_wall = max(last_wall, wall)
            if ev["ev"] == "send":
                sends[ev["uid"]] = wall
            elif ev["ev"] == "recv":
                recvs.add(ev["uid"])
    cutoff = last_wall - grace
    return sorted(uid for uid, wall in sends.items()
                  if uid not in recvs and wall < cutoff)
