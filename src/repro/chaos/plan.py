"""The fault-plan vocabulary shared by both runtimes.

One :class:`FaultPlan` describes *what goes wrong* in a run — message
loss, duplication, reordering, delay, a network partition that heals, a
process crash, or a stable-storage fault — independently of *where* it is
injected.  The DES interposer (:mod:`repro.chaos.des`) and the live
interposer (:mod:`repro.chaos.live`) both consume the same plan, so a
scenario exercised under the simulated clock can be replayed against real
sockets without re-encoding the faults.

Every fault draws from a seeded stream (``FaultPlan.seed`` + the fault's
index), so the same plan + seed reproduces the same injected faults —
in the DES byte-identically, in the live runtime statistically.

The vocabulary (``Fault.kind``):

===============  ==========================================================
``drop``         lose matching messages with probability ``p``
``duplicate``    deliver matching messages twice with probability ``p``
``reorder``      swap adjacent matching messages per channel with prob ``p``
``delay``        hold matching messages for ``delay`` seconds with prob ``p``
``partition``    cut ``group_a`` ↔ ``group_b`` during [start, end), heal after
``crash``        kill process ``pid`` at time ``at`` (runner-composed)
``torn-write``   a checkpoint write is interrupted mid-flush and retried
``fsync-fail``   a checkpoint fsync fails transiently and is retried
``slow-flush``   a checkpoint flush takes ``delay`` extra seconds
===============  ==========================================================
"""

from __future__ import annotations

import hashlib
import json

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Faults that act on in-flight messages (wire interposers).
WIRE_KINDS = ("drop", "duplicate", "reorder", "delay")
#: Faults that act on the topology.
PARTITION_KINDS = ("partition",)
#: Faults that act on processes (composed by the cell runner, not a gate).
CRASH_KINDS = ("crash",)
#: Faults that act on stable storage.
STORAGE_KINDS = ("torn-write", "fsync-fail", "slow-flush")

ALL_KINDS = WIRE_KINDS + PARTITION_KINDS + CRASH_KINDS + STORAGE_KINDS


class ChaosError(ValueError):
    """An invalid fault plan (unknown kind, missing required field)."""


@dataclass(frozen=True)
class Fault:
    """One injected fault.  Fields beyond ``kind`` are kind-specific.

    ``start``/``end`` bound the injection window (``end=None`` = forever);
    wire faults apply to frame kinds in ``frames`` with probability ``p``
    per message.  ``reorder`` and ``delay`` faults must have a finite
    ``end`` so held messages are always flushed before quiescence.
    """

    kind: str
    p: float = 1.0
    start: float = 0.0
    end: float | None = None
    #: Frame/message kinds the fault applies to ("app", "ctl").
    frames: tuple[str, ...] = ("app", "ctl")
    #: Extra latency (``delay``) / flush stretch (``slow-flush``), seconds.
    delay: float = 0.0
    #: Partition sides.
    group_a: tuple[int, ...] = ()
    group_b: tuple[int, ...] = ()
    #: Crash victim.
    pid: int | None = None
    #: Crash time.
    at: float | None = None

    def validate(self) -> None:
        """Raise :class:`ChaosError` unless the record is well-formed."""
        if self.kind not in ALL_KINDS:
            raise ChaosError(f"unknown fault kind {self.kind!r}; "
                             f"choices: {sorted(ALL_KINDS)}")
        if not (0.0 <= self.p <= 1.0):
            raise ChaosError(f"fault {self.kind}: p={self.p} not in [0, 1]")
        if self.end is not None and self.end <= self.start:
            raise ChaosError(f"fault {self.kind}: end={self.end} <= "
                             f"start={self.start}")
        if self.kind in ("reorder", "delay") and self.end is None:
            # Held messages are only flushed at window close; an unbounded
            # window could park a message forever and stall quiescence.
            raise ChaosError(f"fault {self.kind}: requires a finite end "
                             f"(held messages flush at window close)")
        if self.kind == "delay" and self.delay <= 0.0:
            raise ChaosError("fault delay: requires delay > 0")
        if self.kind == "slow-flush" and self.delay <= 0.0:
            raise ChaosError("fault slow-flush: requires delay > 0")
        if self.kind == "partition" and (not self.group_a or not self.group_b):
            raise ChaosError("fault partition: requires group_a and group_b")
        if self.kind == "partition" and set(self.group_a) & set(self.group_b):
            raise ChaosError("fault partition: groups overlap")
        if self.kind == "partition" and self.end is None:
            raise ChaosError("fault partition: requires a finite end (heal)")
        if self.kind == "crash" and (self.pid is None or self.at is None):
            raise ChaosError("fault crash: requires pid and at")

    def active(self, now: float) -> bool:
        """Is ``now`` inside the injection window?"""
        return now >= self.start and (self.end is None or now < self.end)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (defaults omitted); `from_dict` inverts."""
        d: dict[str, Any] = {"kind": self.kind, "p": self.p,
                             "start": self.start}
        if self.end is not None:
            d["end"] = self.end
        if self.frames != ("app", "ctl"):
            d["frames"] = list(self.frames)
        if self.delay:
            d["delay"] = self.delay
        if self.group_a:
            d["group_a"] = list(self.group_a)
        if self.group_b:
            d["group_b"] = list(self.group_b)
        if self.pid is not None:
            d["pid"] = self.pid
        if self.at is not None:
            d["at"] = self.at
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Fault":
        try:
            kind = d["kind"]
        except KeyError:
            raise ChaosError("fault record missing 'kind'") from None
        fault = cls(
            kind=kind,
            p=float(d.get("p", 1.0)),
            start=float(d.get("start", 0.0)),
            end=None if d.get("end") is None else float(d["end"]),
            frames=tuple(d.get("frames", ("app", "ctl"))),
            delay=float(d.get("delay", 0.0)),
            group_a=tuple(d.get("group_a", ())),
            group_b=tuple(d.get("group_b", ())),
            pid=d.get("pid"),
            at=d.get("at"),
        )
        fault.validate()
        return fault


@dataclass(frozen=True)
class FaultPlan:
    """A seeded list of faults — one scenario, runnable in either runtime."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def validate(self) -> None:
        """Validate every fault in the plan."""
        for f in self.faults:
            f.validate()

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- kind selectors (each with the fault's plan-index for seeding) -----

    def _select(self, kinds: tuple[str, ...]) -> list[tuple[int, Fault]]:
        return [(i, f) for i, f in enumerate(self.faults) if f.kind in kinds]

    def wire_faults(self) -> list[tuple[int, Fault]]:
        """Message-level faults (drop/duplicate/reorder/delay)."""
        return self._select(WIRE_KINDS)

    def partition_faults(self) -> list[tuple[int, Fault]]:
        """Network-partition faults."""
        return self._select(PARTITION_KINDS)

    def crash_faults(self) -> list[tuple[int, Fault]]:
        """Process-crash faults."""
        return self._select(CRASH_KINDS)

    def storage_faults(self) -> list[tuple[int, Fault]]:
        """Stable-storage faults (torn-write/fsync-fail/slow-flush)."""
        return self._select(STORAGE_KINDS)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form; `from_dict` inverts."""
        return {"seed": self.seed,
                "faults": [f.as_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        faults = tuple(Fault.from_dict(fd) for fd in d.get("faults", ()))
        return cls(faults=faults, seed=int(d.get("seed", 0)))


def single_fault_plan(kind: str, seed: int = 0, **kwargs: Any) -> FaultPlan:
    """Convenience: a one-fault plan (validated)."""
    fault = Fault(kind=kind, **kwargs)
    fault.validate()
    return FaultPlan(faults=(fault,), seed=seed)


def fault_plan_key(plan: FaultPlan | None) -> str:
    """Short content hash of a plan, for result-cache key salts.

    Two runs that share an :class:`ExperimentConfig` but differ in the
    injected fault plan must never collide on a cached result —
    ``config_key`` hashes only the config, so chaos/fuzz callers fold
    this digest into the cache salt.  ``None`` (no injection) hashes to
    a distinct constant rather than colliding with the empty plan.
    """
    if plan is None:
        return "no-plan"
    canonical = json.dumps(plan.as_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]
