"""Network topologies.

A topology constrains which process pairs may exchange messages directly.
The paper's algorithm itself only needs *some* connectivity (piggybacked
knowledge spreads transitively), but two baselines care deeply:

* Chandy-Lamport sends a marker down every outgoing channel, so marker cost
  scales with edge count;
* Plank's staggered scheme staggers only as much as the topology allows —
  the paper notes a completely connected topology "subverts staggering".

Topologies wrap an undirected :mod:`networkx` graph; communication is
bidirectional over an edge, and the directed channel ``(u, v)`` exists iff
the edge ``{u, v}`` does.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


class Topology:
    """Process-connectivity graph with convenience queries."""

    def __init__(self, graph: nx.Graph, name: str = "custom") -> None:
        n = graph.number_of_nodes()
        if n == 0:
            raise ValueError("topology must have at least one node")
        expected = set(range(n))
        if set(graph.nodes) != expected:
            raise ValueError(
                f"nodes must be exactly 0..{n - 1}, got {sorted(graph.nodes)}")
        if not nx.is_connected(graph) and n > 1:
            raise ValueError("topology must be connected")
        self.graph = graph
        self.name = name

    # -- queries -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.graph.number_of_nodes()

    @property
    def num_channels(self) -> int:
        """Number of *directed* channels (2 per undirected edge)."""
        return 2 * self.graph.number_of_edges()

    def connected(self, u: int, v: int) -> bool:
        """Can ``u`` send directly to ``v``?"""
        return self.graph.has_edge(u, v)

    def neighbors(self, u: int) -> list[int]:
        """Sorted direct neighbors of ``u``."""
        return sorted(self.graph.neighbors(u))

    def degree(self, u: int) -> int:
        """Out-degree of ``u`` (== in-degree; channels are symmetric)."""
        return self.graph.degree(u)

    def diameter(self) -> int:
        """Graph diameter (hops); 0 for a single node."""
        if self.n == 1:
            return 0
        return nx.diameter(self.graph)

    def shortest_path(self, u: int, v: int) -> list[int]:
        """One shortest node path from ``u`` to ``v`` (inclusive)."""
        return nx.shortest_path(self.graph, u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, n={self.n}, edges={self.graph.number_of_edges()})"


# -- factories ---------------------------------------------------------------


def complete(n: int) -> Topology:
    """Every pair connected — the default for protocol experiments."""
    _check_n(n)
    return Topology(nx.complete_graph(n), name=f"complete({n})")


def ring(n: int) -> Topology:
    """Cycle ``0-1-...-(n-1)-0``; matches the CK_REQ forwarding intuition."""
    _check_n(n)
    if n == 1:
        return Topology(nx.complete_graph(1), name="ring(1)")
    if n == 2:
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        g.add_edge(0, 1)
        return Topology(g, name="ring(2)")
    return Topology(nx.cycle_graph(n), name=f"ring({n})")


def star(n: int, hub: int = 0) -> Topology:
    """One hub connected to all others (client-server physical layout)."""
    _check_n(n)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        if i != hub:
            g.add_edge(hub, i)
    return Topology(g, name=f"star({n},hub={hub})")


def line(n: int) -> Topology:
    """Path ``0-1-...-(n-1)`` — maximizes staggering opportunity."""
    _check_n(n)
    return Topology(nx.path_graph(n), name=f"line({n})")


def grid(rows: int, cols: int) -> Topology:
    """2-D mesh with nodes renumbered row-major to ``0..rows*cols-1``."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    g2 = nx.grid_2d_graph(rows, cols)
    mapping = {node: node[0] * cols + node[1] for node in g2.nodes}
    return Topology(nx.relabel_nodes(g2, mapping), name=f"grid({rows}x{cols})")


def random_connected(n: int, p: float, seed: int) -> Topology:
    """Erdős–Rényi ``G(n, p)`` conditioned on connectivity.

    Edges are added greedily from a spanning tree if the raw draw is
    disconnected, so the function always succeeds and stays deterministic
    in ``seed``.
    """
    _check_n(n)
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    # Stitch components together deterministically.
    comps = [sorted(c) for c in nx.connected_components(g)]
    comps.sort()
    for a, b in zip(comps, comps[1:]):
        g.add_edge(a[0], b[0])
    return Topology(g, name=f"random({n},p={p},seed={seed})")


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least 1 process, got {n}")
