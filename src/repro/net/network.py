"""The message-passing network tying processes, topology and channels together.

``Network.send`` is the single entry point every protocol uses.  It

1. validates the destination and (optionally) topology connectivity —
   messages between non-adjacent processes are *routed* along a shortest
   path with per-hop latency, so protocols that logically assume full
   connectivity (like the paper's, whose control messages go to ``P_0``)
   still run over sparse physical topologies;
2. stamps and traces the message (``msg.send`` record);
3. schedules the delivery event at the channel-computed arrival time
   (``msg.deliver`` record, then the destination's handler).

A ``delivery_gate`` hook lets the failure injector suppress delivery to
crashed processes without the network knowing anything about failures.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..des.engine import Simulator
from ..des.events import Event, EventPriority
from ..des.process import SimProcess
from .channel import Channel
from .latency import LatencyModel, UniformLatency
from .message import Message
from .topology import Topology, complete


class Network:
    """Point-to-point network over a topology.

    Parameters
    ----------
    sim:
        The simulator providing the clock, RNG registry and trace.
    topology:
        Connectivity graph; defaults to a complete graph once the first
        process set is known (pass explicitly for sparse experiments).
    latency:
        Shared latency model (per-channel RNG streams keep draws independent).
    fifo:
        Delivery discipline for *all* channels.  The paper's model is
        non-FIFO (default); Chandy-Lamport runs demand ``fifo=True``.
    """

    def __init__(self, sim: Simulator, topology: Topology | None = None,
                 latency: LatencyModel | None = None, *, fifo: bool = False,
                 n: int | None = None,
                 nic_bandwidth: float | None = None,
                 medium_bandwidth: float | None = None,
                 app_n: int | None = None) -> None:
        if topology is None:
            if n is None:
                raise ValueError("pass a topology or n (for a complete graph)")
            topology = complete(n)
        if nic_bandwidth is not None and nic_bandwidth <= 0:
            raise ValueError(f"nic_bandwidth must be > 0, got {nic_bandwidth}")
        if medium_bandwidth is not None and medium_bandwidth <= 0:
            raise ValueError(
                f"medium_bandwidth must be > 0, got {medium_bandwidth}")
        if app_n is not None and not (1 <= app_n <= topology.n):
            raise ValueError(
                f"app_n must be in [1, {topology.n}], got {app_n}")
        self.sim = sim
        self.topology = topology
        #: Number of *application* processes (pids ``0..app_n-1``).  Extra
        #: topology nodes beyond this are infrastructure (e.g. a networked
        #: file server) — excluded from ``n``, broadcasts and workloads.
        self.app_n = app_n if app_n is not None else topology.n
        self.latency = latency if latency is not None else UniformLatency()
        self.fifo = fifo
        #: Bytes/second each process's network interface can transmit;
        #: ``None`` = unlimited (pure latency model).  With a bandwidth,
        #: each sender's outgoing messages serialize at its NIC: a message
        #: departs only when the NIC is free, and occupies it for
        #: ``total_bytes / nic_bandwidth``.
        self.nic_bandwidth = nic_bandwidth
        self._nic_free_at: dict[int, float] = {}
        #: Bytes/second of a *shared* transmission medium (classic shared
        #: fabric/uplink): every message, regardless of endpoints, occupies
        #: it for ``total_bytes / medium_bandwidth``.  This is where bulk
        #: checkpoint transfers visibly delay application traffic (E17) —
        #: per-sender NICs alone cannot show it, since every protocol ships
        #: the same per-sender volume.  ``None`` = no shared bottleneck.
        self.medium_bandwidth = medium_bandwidth
        self._medium_free_at = 0.0
        self.processes: dict[int, SimProcess] = {}
        self._channels: dict[tuple[int, int], Channel] = {}
        #: uid -> pending delivery event, for in-flight flushing on rollback.
        self._pending_deliveries: dict[int, "Event"] = {}
        #: Called before delivery; return False to silently drop (used by the
        #: failure injector for crashed destinations).
        self.delivery_gate: Callable[[Message], bool] | None = None
        # Aggregate counters (per message kind).
        self.sent_by_kind: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}
        self.overhead_by_kind: dict[str, int] = {}
        self.delivered_by_kind: dict[str, int] = {}

    # -- membership --------------------------------------------------------

    def add_process(self, proc: SimProcess) -> None:
        """Register ``proc``; its pid must be a node of the topology."""
        if proc.pid >= self.topology.n:
            raise ValueError(
                f"pid {proc.pid} outside topology of size {self.topology.n}")
        if proc.pid in self.processes:
            raise ValueError(f"duplicate pid {proc.pid}")
        self.processes[proc.pid] = proc
        proc.attach(self)

    def add_processes(self, procs: Iterable[SimProcess]) -> None:
        """Register several processes (pid order irrelevant)."""
        for p in procs:
            self.add_process(p)

    def start_all(self) -> None:
        """Invoke ``on_start`` on every process (in pid order, at t=now)."""
        for pid in sorted(self.processes):
            self.processes[pid].on_start()

    @property
    def n(self) -> int:
        """Number of application processes (see ``app_n``)."""
        return self.app_n

    # -- channels ----------------------------------------------------------

    def channel(self, src: int, dst: int) -> Channel:
        """The directed channel object for ``(src, dst)`` (created lazily)."""
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            rng = self.sim.rng.stream(f"net.{src}->{dst}")
            ch = Channel(src, dst, rng, fifo=self.fifo)
            self._channels[key] = ch
        return ch

    def channels(self) -> list[Channel]:
        """All channels used so far."""
        return [self._channels[k] for k in sorted(self._channels)]

    # -- sending -----------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any = None, *, size: int = 0,
             kind: str = "app", meta: dict[str, Any] | None = None,
             overhead_bytes: int = 0) -> Message:
        """Send one message; returns the envelope (already scheduled)."""
        if dst not in self.processes:
            raise ValueError(f"unknown destination process {dst}")
        if src == dst:
            raise ValueError(f"process {src} cannot send to itself")
        msg = Message(src=src, dst=dst, kind=kind, payload=payload,
                      size=size, overhead_bytes=overhead_bytes,
                      send_time=self.sim.now)
        if meta:
            msg.meta.update(meta)
        ch = self.channel(src, dst)
        delay = self._path_latency(src, dst, msg.total_bytes, ch)
        # NIC serialization: the message departs when the sender's NIC is
        # free and occupies it for its transmission time.
        if self.nic_bandwidth is not None:
            tx = msg.total_bytes / self.nic_bandwidth
            depart = max(self.sim.now, self._nic_free_at.get(src, 0.0))
            self._nic_free_at[src] = depart + tx
            delay += (depart - self.sim.now) + tx
        # Shared-medium serialization: every message contends for one
        # fabric, so bulk transfers delay unrelated traffic.
        if self.medium_bandwidth is not None:
            tx = msg.total_bytes / self.medium_bandwidth
            depart = max(self.sim.now, self._medium_free_at)
            self._medium_free_at = depart + tx
            delay += (depart - self.sim.now) + tx
        arrival = ch.arrival_time(self.sim.now, delay)
        ch.stats.on_send(msg)
        self._bump(self.sent_by_kind, kind)
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + msg.total_bytes)
        self.overhead_by_kind[kind] = (
            self.overhead_by_kind.get(kind, 0) + msg.overhead_bytes)
        self.sim.trace.record(self.sim.now, "msg.send", src,
                              uid=msg.uid, dst=dst, kind=kind,
                              bytes=msg.total_bytes)
        ev = self.sim.schedule_at(arrival, lambda: self._deliver(msg, ch),
                                  priority=EventPriority.DELIVERY)
        self._pending_deliveries[msg.uid] = ev
        return msg

    def broadcast(self, src: int, payload: Any = None, *, size: int = 0,
                  kind: str = "app", meta: dict[str, Any] | None = None,
                  overhead_bytes: int = 0) -> list[Message]:
        """Send the same content to every other process (N-1 messages)."""
        out = []
        for dst in sorted(self.processes):
            if dst != src:
                out.append(self.send(src, dst, payload, size=size, kind=kind,
                                     meta=dict(meta) if meta else None,
                                     overhead_bytes=overhead_bytes))
        return out

    # -- internals ---------------------------------------------------------

    def _path_latency(self, src: int, dst: int, nbytes: int,
                      ch: Channel) -> float:
        """Latency for the (possibly multi-hop) path from src to dst."""
        if self.topology.connected(src, dst):
            return self.latency.sample(ch.rng, src, dst, nbytes)
        # Route along a shortest path; per-hop draws from the direct
        # channel's stream keep determinism without materializing channels
        # for every hop pair.
        path = self.topology.shortest_path(src, dst)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.latency.sample(ch.rng, u, v, nbytes)
        return total

    def _deliver(self, msg: Message, ch: Channel) -> None:
        self._pending_deliveries.pop(msg.uid, None)
        if self.delivery_gate is not None and not self.delivery_gate(msg):
            # Gates attribute their refusal by stamping meta["drop_cause"]
            # (failure injector: "crashed"; partitions: "partition"; chaos:
            # "chaos.*"); an unstamped refusal is a generic gate drop.
            cause = msg.meta.get("drop_cause", "gate")
            ch.stats.on_drop(msg, cause=cause)
            self.sim.trace.record(self.sim.now, "msg.drop", msg.dst,
                                  uid=msg.uid, src=msg.src, kind=msg.kind,
                                  cause=cause)
            return
        msg.deliver_time = self.sim.now
        ch.stats.on_deliver(msg)
        self._bump(self.delivered_by_kind, msg.kind)
        self.sim.trace.record(self.sim.now, "msg.deliver", msg.dst,
                              uid=msg.uid, src=msg.src, kind=msg.kind,
                              bytes=msg.total_bytes)
        self.processes[msg.dst]._deliver(msg)

    @staticmethod
    def _bump(counter: dict[str, int], kind: str) -> None:
        counter[kind] = counter.get(kind, 0) + 1

    # -- summaries ---------------------------------------------------------

    def total_sent(self, kind: str | None = None) -> int:
        """Messages sent, optionally restricted to one kind."""
        if kind is None:
            return sum(self.sent_by_kind.values())
        return self.sent_by_kind.get(kind, 0)

    def total_bytes(self, kind: str | None = None) -> int:
        """Wire bytes sent, optionally restricted to one kind."""
        if kind is None:
            return sum(self.bytes_by_kind.values())
        return self.bytes_by_kind.get(kind, 0)

    def total_overhead_bytes(self, kind: str | None = None) -> int:
        """Protocol-added bytes (piggybacks + control payloads)."""
        if kind is None:
            return sum(self.overhead_by_kind.values())
        return self.overhead_by_kind.get(kind, 0)

    def in_flight(self) -> int:
        """Messages currently in flight across all channels."""
        return sum(ch.stats.in_flight for ch in self._channels.values())

    def drop_in_flight(self) -> int:
        """Discard every message currently in flight; returns the count.

        Used by rollback recovery: messages in the channels belong to the
        rolled-back execution and must not be delivered into the recovered
        one (channel-flushing, the standard recovery assumption).  Each
        dropped message is traced as ``msg.drop``.
        """
        dropped = 0
        for uid, ev in list(self._pending_deliveries.items()):
            if ev.active:
                ev.cancel()
                dropped += 1
                self.sim.trace.record(self.sim.now, "msg.drop", -1,
                                      uid=uid, reason="rollback",
                                      cause="rollback")
            self._pending_deliveries.pop(uid, None)
        for ch in self._channels.values():
            if ch.stats.in_flight:
                ch.stats.dropped_by_cause["rollback"] = (
                    ch.stats.dropped_by_cause.get("rollback", 0)
                    + ch.stats.in_flight)
            ch.stats.dropped += ch.stats.in_flight
            ch.stats.in_flight = 0
        return dropped

    def dropped_by_cause(self) -> dict[str, int]:
        """Per-cause drop totals summed over all channels."""
        totals: dict[str, int] = {}
        for ch in self._channels.values():
            for cause, count in ch.stats.dropped_by_cause.items():
                totals[cause] = totals.get(cause, 0) + count
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Network(n={self.n}, topo={self.topology.name}, "
                f"fifo={self.fifo}, sent={self.total_sent()})")
