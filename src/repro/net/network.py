"""The message-passing network tying processes, topology and channels together.

``Network.send`` is the single entry point every protocol uses.  It

1. validates the destination and (optionally) topology connectivity —
   messages between non-adjacent processes are *routed* along a shortest
   path with per-hop latency, so protocols that logically assume full
   connectivity (like the paper's, whose control messages go to ``P_0``)
   still run over sparse physical topologies;
2. stamps and traces the message (``msg.send`` record);
3. schedules the delivery event at the channel-computed arrival time
   (``msg.deliver`` record, then the destination's handler).

A ``delivery_gate`` hook lets the failure injector suppress delivery to
crashed processes without the network knowing anything about failures.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush
from typing import Any, Callable, Iterable

from ..des.engine import Simulator
from ..des.events import Event, EventPriority
from ..des.process import SimProcess
from .channel import Channel
from .latency import ConstantLatency, LatencyModel, UniformLatency
from .message import Message, _next_uid
from .topology import Topology, complete

#: Plain int of the delivery priority band — heap tuples compare faster
#: with ints than IntEnum members, and the value is fixed.
_DELIVERY = int(EventPriority.DELIVERY)


class Network:
    """Point-to-point network over a topology.

    Parameters
    ----------
    sim:
        The simulator providing the clock, RNG registry and trace.
    topology:
        Connectivity graph; defaults to a complete graph once the first
        process set is known (pass explicitly for sparse experiments).
    latency:
        Shared latency model (per-channel RNG streams keep draws independent).
    fifo:
        Delivery discipline for *all* channels.  The paper's model is
        non-FIFO (default); Chandy-Lamport runs demand ``fifo=True``.
    """

    def __init__(self, sim: Simulator, topology: Topology | None = None,
                 latency: LatencyModel | None = None, *, fifo: bool = False,
                 n: int | None = None,
                 nic_bandwidth: float | None = None,
                 medium_bandwidth: float | None = None,
                 app_n: int | None = None) -> None:
        if topology is None:
            if n is None:
                raise ValueError("pass a topology or n (for a complete graph)")
            topology = complete(n)
        if nic_bandwidth is not None and nic_bandwidth <= 0:
            raise ValueError(f"nic_bandwidth must be > 0, got {nic_bandwidth}")
        if medium_bandwidth is not None and medium_bandwidth <= 0:
            raise ValueError(
                f"medium_bandwidth must be > 0, got {medium_bandwidth}")
        if app_n is not None and not (1 <= app_n <= topology.n):
            raise ValueError(
                f"app_n must be in [1, {topology.n}], got {app_n}")
        self.sim = sim
        self.topology = topology
        #: Number of *application* processes (pids ``0..app_n-1``).  Extra
        #: topology nodes beyond this are infrastructure (e.g. a networked
        #: file server) — excluded from ``n``, broadcasts and workloads.
        self.app_n = app_n if app_n is not None else topology.n
        self.latency = latency if latency is not None else UniformLatency()
        self.fifo = fifo
        #: Bytes/second each process's network interface can transmit;
        #: ``None`` = unlimited (pure latency model).  With a bandwidth,
        #: each sender's outgoing messages serialize at its NIC: a message
        #: departs only when the NIC is free, and occupies it for
        #: ``total_bytes / nic_bandwidth``.
        self.nic_bandwidth = nic_bandwidth
        self._nic_free_at: dict[int, float] = {}
        #: Bytes/second of a *shared* transmission medium (classic shared
        #: fabric/uplink): every message, regardless of endpoints, occupies
        #: it for ``total_bytes / medium_bandwidth``.  This is where bulk
        #: checkpoint transfers visibly delay application traffic (E17) —
        #: per-sender NICs alone cannot show it, since every protocol ships
        #: the same per-sender volume.  ``None`` = no shared bottleneck.
        self.medium_bandwidth = medium_bandwidth
        self._medium_free_at = 0.0
        self.processes: dict[int, SimProcess] = {}
        self._channels: dict[tuple[int, int], Channel] = {}
        #: Hot-path mirror of ``_channels`` keyed by ``src * n + dst`` —
        #: an int dict lookup per send instead of building + hashing a
        #: tuple key.
        self._chan_fast: dict[int, Channel] = {}
        self._tn = topology.n
        #: With a ConstantLatency model every direct-channel draw is the
        #: same constant (the model ignores the RNG), so the per-send
        #: sample() call can be skipped entirely.
        self._const_delay = (self.latency.delay
                             if type(self.latency) is ConstantLatency
                             else None)
        #: uid -> pending delivery event, for in-flight flushing on rollback.
        self._pending_deliveries: dict[int, "Event"] = {}
        #: Whether sends must create *cancellable* delivery events.  Off by
        #: default: a failure-free run never cancels an in-flight message,
        #: so deliveries ride the heap as bare callables (no Event object,
        #: no pending-dict bookkeeping — measurable per message).  Flipped
        #: on for good the moment a delivery gate is installed, which every
        #: fault mechanism (failure/partition/chaos injectors — and thus
        #: every ``drop_in_flight`` caller) does before the run starts.
        self._track_deliveries = False
        self._delivery_gate: Callable[[Message], bool] | None = None
        # Aggregate counters (per message kind).
        self.sent_by_kind: dict[str, int] = {}
        self.bytes_by_kind: dict[str, int] = {}
        self.overhead_by_kind: dict[str, int] = {}
        self.delivered_by_kind: dict[str, int] = {}

    # -- membership --------------------------------------------------------

    def add_process(self, proc: SimProcess) -> None:
        """Register ``proc``; its pid must be a node of the topology."""
        if proc.pid >= self.topology.n:
            raise ValueError(
                f"pid {proc.pid} outside topology of size {self.topology.n}")
        if proc.pid in self.processes:
            raise ValueError(f"duplicate pid {proc.pid}")
        self.processes[proc.pid] = proc
        proc.attach(self)

    def add_processes(self, procs: Iterable[SimProcess]) -> None:
        """Register several processes (pid order irrelevant)."""
        for p in procs:
            self.add_process(p)

    def start_all(self) -> None:
        """Invoke ``on_start`` on every process (in pid order, at t=now)."""
        for pid in sorted(self.processes):
            self.processes[pid].on_start()

    @property
    def n(self) -> int:
        """Number of application processes (see ``app_n``)."""
        return self.app_n

    @property
    def delivery_gate(self) -> Callable[[Message], bool] | None:
        """Called before delivery; return False to silently drop (used by
        the failure/partition/chaos injectors)."""
        return self._delivery_gate

    @delivery_gate.setter
    def delivery_gate(self, gate: Callable[[Message], bool] | None) -> None:
        self._delivery_gate = gate
        if gate is not None:
            # A gate means faults are in play: from here on every delivery
            # must be cancellable so drop_in_flight can flush the channels.
            self._track_deliveries = True

    # -- channels ----------------------------------------------------------

    def channel(self, src: int, dst: int) -> Channel:
        """The directed channel object for ``(src, dst)`` (created lazily)."""
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            rng = self.sim.rng.stream(f"net.{src}->{dst}")
            ch = Channel(src, dst, rng, fifo=self.fifo,
                         direct=self.topology.connected(src, dst))
            self._channels[key] = ch
            self._chan_fast[src * self._tn + dst] = ch
        return ch

    def channels(self) -> list[Channel]:
        """All channels used so far."""
        return [self._channels[k] for k in sorted(self._channels)]

    # -- sending -----------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any = None, size: int = 0,
             kind: str = "app", meta: dict[str, Any] | None = None,
             overhead_bytes: int = 0) -> Message:
        """Send one message; returns the envelope (already scheduled).

        Hot path (once per message in every experiment): locals are
        hoisted, channel stats and counters are updated inline, the trace
        call is guarded so a disabled recorder costs nothing, the ``meta``
        dict is adopted (not copied), and the delivery event is pushed
        onto the simulator heap directly — the ``schedule_at`` frame is
        measurable at one call per message.  Parameters are positional
        (not keyword-only) so hot callers skip keyword packing.
        """
        if dst not in self.processes:
            raise ValueError(f"unknown destination process {dst}")
        if src == dst:
            raise ValueError(f"process {src} cannot send to itself")
        sim = self.sim
        now = sim.now
        total = size + overhead_bytes
        # Message.__init__ inlined (keep the stores in sync with it): one
        # envelope per send, and the constructor frame is measurable.
        msg = Message.__new__(Message)
        msg.src = src
        msg.dst = dst
        msg.kind = kind
        msg.payload = payload
        msg.meta = {} if meta is None else meta
        msg.size = size
        msg.overhead_bytes = overhead_bytes
        msg.send_time = now
        msg.deliver_time = None
        msg.uid = _next_uid()
        try:
            ch = self._chan_fast[src * self._tn + dst]
        except KeyError:
            ch = self.channel(src, dst)
        if ch.direct:
            delay = self._const_delay
            if delay is None:
                delay = self.latency.sample(ch.rng, src, dst, total)
        else:
            delay = self._path_latency(src, dst, total, ch)
        # NIC serialization: the message departs when the sender's NIC is
        # free and occupies it for its transmission time.
        if self.nic_bandwidth is not None:
            tx = total / self.nic_bandwidth
            depart = max(now, self._nic_free_at.get(src, 0.0))
            self._nic_free_at[src] = depart + tx
            delay += (depart - now) + tx
        # Shared-medium serialization: every message contends for one
        # fabric, so bulk transfers delay unrelated traffic.
        if self.medium_bandwidth is not None:
            tx = total / self.medium_bandwidth
            depart = max(now, self._medium_free_at)
            self._medium_free_at = depart + tx
            delay += (depart - now) + tx
        # Non-FIFO arrival is simply now + delay; only FIFO channels need
        # the clamping logic in Channel.arrival_time.
        if ch.fifo:
            arrival = ch.arrival_time(now, delay)
        else:
            arrival = now + delay
        stats = ch.stats
        stats.messages += 1
        stats.bytes += total
        flight = stats.in_flight + 1
        stats.in_flight = flight
        if flight > stats.max_in_flight:
            stats.max_in_flight = flight
        # try/except beats .get(): the key exists on every send but the
        # kind's first, and the happy path is two subscripts, no method call.
        counts = self.sent_by_kind
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1
        counts = self.bytes_by_kind
        try:
            counts[kind] += total
        except KeyError:
            counts[kind] = total
        counts = self.overhead_by_kind
        try:
            counts[kind] += overhead_bytes
        except KeyError:
            counts[kind] = overhead_bytes
        tr = sim.trace
        if tr.enabled:
            tr.record(now, "msg.send", src, uid=msg.uid, dst=dst, kind=kind,
                      bytes=total)
        # Inlined Simulator.schedule_at (arrival >= now by construction:
        # every latency model draws a positive delay and the serialization
        # terms only add).  partial beats a lambda here: fewer allocations
        # (no closure cells) and a C-level call.
        sim._seq = seq = sim._seq + 1
        heap = sim._heap
        if self._track_deliveries:
            # Faults in play: wrap in a cancellable Event and track it so
            # drop_in_flight can flush the channel.
            ev = Event(arrival, _DELIVERY, seq, partial(self._deliver, msg, ch))
            ev._owner = sim
            heappush(heap, (arrival, _DELIVERY, seq, ev))
            self._pending_deliveries[msg.uid] = ev
        else:
            heappush(heap, (arrival, _DELIVERY, seq,
                            partial(self._deliver, msg, ch)))
        if len(heap) > sim.peak_pending:
            sim.peak_pending = len(heap)
        return msg

    def broadcast(self, src: int, payload: Any = None, *, size: int = 0,
                  kind: str = "app", meta: dict[str, Any] | None = None,
                  overhead_bytes: int = 0) -> list[Message]:
        """Send the same content to every other process (N-1 messages)."""
        out = []
        for dst in sorted(self.processes):
            if dst != src:
                out.append(self.send(src, dst, payload, size=size, kind=kind,
                                     meta=dict(meta) if meta else None,
                                     overhead_bytes=overhead_bytes))
        return out

    # -- internals ---------------------------------------------------------

    def _path_latency(self, src: int, dst: int, nbytes: int,
                      ch: Channel) -> float:
        """Latency for the (possibly multi-hop) path from src to dst."""
        if self.topology.connected(src, dst):
            return self.latency.sample(ch.rng, src, dst, nbytes)
        # Route along a shortest path; per-hop draws from the direct
        # channel's stream keep determinism without materializing channels
        # for every hop pair.
        path = self.topology.shortest_path(src, dst)
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += self.latency.sample(ch.rng, u, v, nbytes)
        return total

    def _deliver(self, msg: Message, ch: Channel) -> None:
        sim = self.sim
        now = sim.now
        if self._track_deliveries:
            self._pending_deliveries.pop(msg.uid, None)
        gate = self._delivery_gate
        if gate is not None and not gate(msg):
            # Gates attribute their refusal by stamping meta["drop_cause"]
            # (failure injector: "crashed"; partitions: "partition"; chaos:
            # "chaos.*"); an unstamped refusal is a generic gate drop.
            cause = msg.meta.get("drop_cause", "gate")
            ch.stats.on_drop(msg, cause=cause)
            tr = sim.trace
            if tr.enabled:
                tr.record(now, "msg.drop", msg.dst, uid=msg.uid,
                          src=msg.src, kind=msg.kind, cause=cause)
            return
        msg.deliver_time = now
        stats = ch.stats
        stats.in_flight -= 1
        stats.delivered += 1
        kind = msg.kind
        counts = self.delivered_by_kind
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1
        tr = sim.trace
        if tr.enabled:
            tr.record(now, "msg.deliver", msg.dst, uid=msg.uid,
                      src=msg.src, kind=kind,
                      bytes=msg.size + msg.overhead_bytes)
        # SimProcess._deliver inlined (halted check + count + dispatch):
        # one call frame per delivered message.  Keep in sync with
        # SimProcess._deliver, which remains the entry point for direct
        # callers.
        proc = self.processes[msg.dst]
        if proc.halted:
            return
        proc.delivered_count += 1
        proc.on_message(msg)

    @staticmethod
    def _bump(counter: dict[str, int], kind: str) -> None:
        counter[kind] = counter.get(kind, 0) + 1

    # -- summaries ---------------------------------------------------------

    def total_sent(self, kind: str | None = None) -> int:
        """Messages sent, optionally restricted to one kind."""
        if kind is None:
            return sum(self.sent_by_kind.values())
        return self.sent_by_kind.get(kind, 0)

    def total_bytes(self, kind: str | None = None) -> int:
        """Wire bytes sent, optionally restricted to one kind."""
        if kind is None:
            return sum(self.bytes_by_kind.values())
        return self.bytes_by_kind.get(kind, 0)

    def total_overhead_bytes(self, kind: str | None = None) -> int:
        """Protocol-added bytes (piggybacks + control payloads)."""
        if kind is None:
            return sum(self.overhead_by_kind.values())
        return self.overhead_by_kind.get(kind, 0)

    def in_flight(self) -> int:
        """Messages currently in flight across all channels."""
        return sum(ch.stats.in_flight for ch in self._channels.values())

    def drop_in_flight(self) -> int:
        """Discard every message currently in flight; returns the count.

        Used by rollback recovery: messages in the channels belong to the
        rolled-back execution and must not be delivered into the recovered
        one (channel-flushing, the standard recovery assumption).  Each
        dropped message is traced as ``msg.drop``.
        """
        dropped = 0
        for uid, ev in list(self._pending_deliveries.items()):
            if ev.active:
                ev.cancel()
                dropped += 1
                self.sim.trace.record(self.sim.now, "msg.drop", -1,
                                      uid=uid, reason="rollback",
                                      cause="rollback")
            self._pending_deliveries.pop(uid, None)
        for ch in self._channels.values():
            if ch.stats.in_flight:
                ch.stats.dropped_by_cause["rollback"] = (
                    ch.stats.dropped_by_cause.get("rollback", 0)
                    + ch.stats.in_flight)
            ch.stats.dropped += ch.stats.in_flight
            ch.stats.in_flight = 0
        return dropped

    def dropped_by_cause(self) -> dict[str, int]:
        """Per-cause drop totals summed over all channels."""
        totals: dict[str, int] = {}
        for ch in self._channels.values():
            for cause, count in ch.stats.dropped_by_cause.items():
                totals[cause] = totals.get(cause, 0) + count
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Network(n={self.n}, topo={self.topology.name}, "
                f"fifo={self.fifo}, sent={self.total_sent()})")
