"""Directed point-to-point channels.

A :class:`Channel` models one directed pair ``(src, dst)``.  It owns:

* its RNG stream (named ``"net.<src>-><dst>"``) so latency draws are
  independent per channel and reproducible;
* the FIFO/non-FIFO discipline.  The paper's system model says channels
  *need not* be FIFO, and the default here is non-FIFO: each message's
  arrival time is ``now + latency`` independently, so a later send can
  overtake an earlier one.  Chandy-Lamport, however, *requires* FIFO
  channels; with ``fifo=True`` arrivals are clamped to be non-decreasing
  (``max(now + latency, last_arrival + epsilon)``);
* per-channel statistics (message and byte counts, in-flight count), which
  the Chandy-Lamport channel-state recording and the metrics layer read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .message import Message

#: Minimal separation between consecutive FIFO arrivals — keeps the order
#: strict even when two latency draws would collide.
FIFO_EPSILON = 1e-9


@dataclass
class ChannelStats:
    """Counters a channel maintains; read by metrics and tests."""

    messages: int = 0
    bytes: int = 0
    in_flight: int = 0
    delivered: int = 0
    dropped: int = 0
    max_in_flight: int = 0
    #: ``dropped`` split by cause ("gate", "crashed", "partition",
    #: "rollback", "chaos.drop", ...) — protocol-intended drops stay
    #: distinguishable from injected ones.
    dropped_by_cause: dict[str, int] = field(default_factory=dict)

    def on_send(self, msg: Message) -> None:
        """Account one departure (message + bytes + in-flight)."""
        self.messages += 1
        self.bytes += msg.total_bytes
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)

    def on_deliver(self, msg: Message) -> None:
        """Account one delivery (in-flight down, delivered up)."""
        self.in_flight -= 1
        self.delivered += 1

    def on_drop(self, msg: Message, cause: str = "gate") -> None:
        """Account one dropped message, attributed to ``cause``."""
        self.in_flight -= 1
        self.dropped += 1
        self.dropped_by_cause[cause] = self.dropped_by_cause.get(cause, 0) + 1


class Channel:
    """One directed channel with a latency model and delivery discipline."""

    def __init__(self, src: int, dst: int, rng: np.random.Generator,
                 fifo: bool = False, direct: bool = True) -> None:
        self.src = src
        self.dst = dst
        self.rng = rng
        self.fifo = fifo
        #: Whether the endpoints are topology-adjacent (computed once at
        #: channel creation; non-adjacent pairs route per-hop latency).
        self.direct = direct
        self.stats = ChannelStats()
        self._last_arrival = 0.0

    def arrival_time(self, now: float, latency: float) -> float:
        """Compute the delivery timestamp for a message sent at ``now``.

        Non-FIFO: simply ``now + latency``.  FIFO: additionally clamped to
        strictly after the previous arrival on this channel.
        """
        t = now + latency
        if self.fifo:
            t = max(t, self._last_arrival + FIFO_EPSILON)
            self._last_arrival = t
        return t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        discipline = "fifo" if self.fifo else "non-fifo"
        return f"Channel(P{self.src}->P{self.dst}, {discipline}, sent={self.stats.messages})"
