"""Message-passing network substrate.

Implements the paper's system model (§2.1): asynchronous message passing
over channels with finite-but-arbitrary delay, not necessarily FIFO.
See :mod:`~repro.net.network` for the send/deliver pipeline,
:mod:`~repro.net.latency` for delay models and :mod:`~repro.net.topology`
for connectivity graphs.
"""

from .channel import FIFO_EPSILON, Channel, ChannelStats
from .latency import (
    BandwidthLatency,
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from .message import NO_PROCESS, Message
from .network import Network
from .topology import (
    Topology,
    complete,
    grid,
    line,
    random_connected,
    ring,
    star,
)

__all__ = [
    "BandwidthLatency",
    "Channel",
    "ChannelStats",
    "ConstantLatency",
    "EmpiricalLatency",
    "ExponentialLatency",
    "FIFO_EPSILON",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "NO_PROCESS",
    "Network",
    "Topology",
    "UniformLatency",
    "complete",
    "grid",
    "line",
    "random_connected",
    "ring",
    "star",
]
