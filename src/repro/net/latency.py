"""Channel latency models.

The paper's model requires only *finite but arbitrary* transmission delays.
Experiments therefore parameterize delay distributions; each model maps
``(rng, src, dst, size)`` to a positive delay in simulated seconds.

All models are stateless value objects — the RNG stream is owned by the
channel, so a model instance can be shared across every channel while keeping
per-channel draws independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


class LatencyModel:
    """Base class: turn a message into a transmission delay."""

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        """Return the delay (> 0) for one message of ``size`` bytes."""
        raise NotImplementedError

    def mean(self, size: int = 0) -> float:
        """Expected delay for a message of ``size`` bytes.

        Used by experiments to choose sensible timeouts (the paper's
        convergence timer must comfortably exceed typical round trips).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds.

    The deterministic scenario replays (Figures 2 and 5) use this so the
    event order is fully scripted.
    """

    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError(f"delay must be positive, got {self.delay}")

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        return self.delay

    def mean(self, size: int = 0) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delay uniform in ``[low, high]`` — the default for random workloads.

    A wide interval produces heavy message reordering, exercising the
    paper's non-FIFO channel assumption.
    """

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ValueError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self, size: int = 0) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Delay = ``floor_ + Exp(mean_extra)`` — long-tailed WAN-ish delays."""

    floor_: float = 0.1
    mean_extra: float = 0.9

    def __post_init__(self) -> None:
        if self.floor_ < 0 or self.mean_extra <= 0:
            raise ValueError("floor_ must be >= 0 and mean_extra > 0")

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        return self.floor_ + float(rng.exponential(self.mean_extra))

    def mean(self, size: int = 0) -> float:
        return self.floor_ + self.mean_extra


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normal delay, the classic fit for datacenter RTT distributions."""

    median: float = 1.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        return float(rng.lognormal(np.log(self.median), self.sigma))

    def mean(self, size: int = 0) -> float:
        return float(self.median * np.exp(self.sigma ** 2 / 2.0))


@dataclass(frozen=True)
class BandwidthLatency(LatencyModel):
    """Propagation + serialization: ``base + size/bandwidth (+ jitter)``.

    Makes big messages (checkpoint transfers) slower than small control
    messages, which matters for the storage-contention experiments.
    """

    base: float = 0.05
    bandwidth: float = 1e6  # bytes per simulated second
    jitter: float = 0.0     # max uniform extra

    def __post_init__(self) -> None:
        if self.base <= 0 or self.bandwidth <= 0 or self.jitter < 0:
            raise ValueError("base and bandwidth must be > 0, jitter >= 0")

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        d = self.base + size / self.bandwidth
        if self.jitter > 0:
            d += float(rng.uniform(0.0, self.jitter))
        return d

    def mean(self, size: int = 0) -> float:
        return self.base + size / self.bandwidth + self.jitter / 2.0


class EmpiricalLatency(LatencyModel):
    """Resample delays from an observed sample (bootstrap).

    Stands in for "replay the authors' testbed delays" — we have no such
    trace, but any measured RTT sample can be plugged in unchanged.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        if np.any(arr <= 0):
            raise ValueError("all samples must be positive")
        self.samples = arr

    def sample(self, rng: np.random.Generator, src: int, dst: int,
               size: int) -> float:
        return float(self.samples[rng.integers(0, self.samples.size)])

    def mean(self, size: int = 0) -> float:
        return float(self.samples.mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmpiricalLatency(n={self.samples.size}, mean={self.samples.mean():.4g})"
