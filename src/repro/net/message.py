"""Message envelope.

A :class:`Message` is what travels between processes.  The envelope separates
three concerns:

* **application payload** (``payload``) — opaque to every protocol;
* **protocol piggyback** (``meta``) — a small mapping the checkpointing
  protocol attaches to *application* messages.  The paper's algorithm
  piggybacks ``(csn, stat, tentSet)``; Chandy-Lamport piggybacks nothing but
  sends dedicated marker messages; CIC piggybacks an index.  Keeping this a
  mapping lets one envelope serve every protocol while the byte-accounting
  helpers still charge each protocol for exactly what it adds;
* **accounting** (``size``, ``overhead_bytes``, timestamps, ``uid``) — used
  by the metrics layer.

Messages compare by ``uid`` so they can live in sets — the paper's
``logSet`` is literally a set of messages.

``Message`` is a hand-written ``__slots__`` class rather than a dataclass:
one is allocated per send on the simulator's hot path, and slots cut both
the per-instance memory and the attribute-access cost.  The constructor
keeps the exact positional field order of the old dataclass.
"""

from __future__ import annotations

import itertools
from typing import Any

#: Process id used for "no process" (e.g. records from the storage server).
NO_PROCESS = -1

_uid_counter = itertools.count(1)

# Bound C method: drawing a uid is one C call, no Python frame (one per
# message allocation).
_next_uid = _uid_counter.__next__


class Message:
    """One message in flight or delivered.

    Attributes
    ----------
    src, dst:
        Sender / receiver process ids.
    kind:
        Coarse class of message: ``"app"`` for application messages, any
        other string for protocol control traffic (``"ctl"``, ``"marker"``,
        ``"token"``...).  The paper's accounting distinguishes exactly
        application vs control messages, so this is the pivot for metrics.
    payload:
        Application- or protocol-defined content.
    meta:
        Piggybacked protocol state (see module docstring).  A caller-supplied
        mapping is adopted, not copied — the network builds one dict per send
        and hands over ownership.
    size:
        Application payload size in bytes (synthetic).
    overhead_bytes:
        Bytes added by the protocol: piggyback encoding on app messages, or
        the full size of a control message.  Charged by the protocol layer.
    send_time / deliver_time:
        Stamped by the network; ``deliver_time`` is ``None`` while in flight.
    uid:
        Globally unique id; identity for sets/dicts and for the causality
        layer's send/receive matching.
    """

    __slots__ = ("src", "dst", "kind", "payload", "meta", "size",
                 "overhead_bytes", "send_time", "deliver_time", "uid")

    def __init__(self, src: int, dst: int, kind: str = "app",
                 payload: Any = None, meta: dict[str, Any] | None = None,
                 size: int = 0, overhead_bytes: int = 0,
                 send_time: float = 0.0, deliver_time: float | None = None,
                 uid: int | None = None) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.meta = {} if meta is None else meta
        self.size = size
        self.overhead_bytes = overhead_bytes
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.uid = _next_uid() if uid is None else uid

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Message) and other.uid == self.uid

    @property
    def delivered(self) -> bool:
        """``True`` once the network has handed the message to ``dst``."""
        return self.deliver_time is not None

    @property
    def total_bytes(self) -> int:
        """Payload plus protocol overhead — what the wire actually carries."""
        return self.size + self.overhead_bytes

    def describe(self) -> str:
        """Compact human-readable form used in example script output."""
        t = f"@{self.send_time:.3f}"
        arrow = f"P{self.src}->P{self.dst}"
        return f"[{self.kind} #{self.uid} {arrow} {t} {self.total_bytes}B]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
