"""Happened-before event graph.

Builds Lamport's relation ``hb = (xo ∪ m)+`` (paper §2.2) from a simulation
trace:

* **xo** (execution order): consecutive local events of one process;
* **m** (message order): ``send(M) -> receive(M)``, matched by message uid.

Events are the trace records themselves (identified by their global ``seq``),
so *any* traced occurrence — deliveries, sends, tentative checkpoints,
finalizations — participates in the relation.  Happened-before is graph
reachability; the verifier uses it as the ground-truth oracle, with vector
clocks as the fast cross-check.
"""

from __future__ import annotations

import networkx as nx

from ..des.trace import TraceRecord, TraceRecorder
from .vector_clock import VectorClock

#: Trace kinds that count as process events for the hb relation.  ``msg.send``
#: and ``msg.deliver`` are emitted by the network; checkpoint kinds by the
#: protocol hosts.
DEFAULT_EVENT_KINDS = (
    "msg.send",
    "msg.deliver",
    "ckpt.tentative",
    "ckpt.finalize",
    "app.internal",
)


class EventGraph:
    """Happened-before DAG over trace records.

    Parameters
    ----------
    trace:
        The recorder to index.
    n:
        Number of processes (width of computed vector clocks).
    kinds:
        Which record kinds become events (default
        :data:`DEFAULT_EVENT_KINDS`).
    """

    def __init__(self, trace: TraceRecorder, n: int,
                 kinds: tuple[str, ...] = DEFAULT_EVENT_KINDS) -> None:
        self.n = n
        self.graph = nx.DiGraph()
        self.events: list[TraceRecord] = []
        self._by_seq: dict[int, TraceRecord] = {}
        kinds_set = set(kinds)
        last_of_process: dict[int, int] = {}
        send_of_uid: dict[int, int] = {}

        for rec in trace:
            if rec.kind not in kinds_set or rec.process < 0:
                continue
            self.events.append(rec)
            self._by_seq[rec.seq] = rec
            self.graph.add_node(rec.seq)
            # xo edge from this process's previous event.
            prev = last_of_process.get(rec.process)
            if prev is not None:
                self.graph.add_edge(prev, rec.seq, relation="xo")
            last_of_process[rec.process] = rec.seq
            # m edges via message uid.
            uid = rec.data.get("uid")
            if rec.kind == "msg.send" and uid is not None:
                send_of_uid[uid] = rec.seq
            elif rec.kind == "msg.deliver" and uid is not None:
                s = send_of_uid.get(uid)
                if s is not None:
                    self.graph.add_edge(s, rec.seq, relation="m")

        self._descendants_cache: dict[int, set[int]] = {}

    # -- queries -------------------------------------------------------------

    def happened_before(self, a: TraceRecord | int, b: TraceRecord | int) -> bool:
        """``True`` iff event ``a`` happened before event ``b`` (strict)."""
        sa = a.seq if isinstance(a, TraceRecord) else a
        sb = b.seq if isinstance(b, TraceRecord) else b
        if sa == sb:
            return False
        desc = self._descendants(sa)
        return sb in desc

    def concurrent(self, a: TraceRecord | int, b: TraceRecord | int) -> bool:
        """Neither happened before the other (and not the same event)."""
        sa = a.seq if isinstance(a, TraceRecord) else a
        sb = b.seq if isinstance(b, TraceRecord) else b
        if sa == sb:
            return False
        return not self.happened_before(sa, sb) and not self.happened_before(sb, sa)

    def _descendants(self, seq: int) -> set[int]:
        got = self._descendants_cache.get(seq)
        if got is None:
            got = nx.descendants(self.graph, seq)
            self._descendants_cache[seq] = got
        return got

    # -- vector clocks ---------------------------------------------------------

    def vector_clocks(self) -> dict[int, VectorClock]:
        """Compute the vector clock of every event (keyed by record seq).

        Standard rules: each event ticks its own component; an ``m`` edge
        carries the sender's clock into the receive's merge.  Events are
        processed in trace order, which respects both xo and m (a message is
        always delivered after it is sent).
        """
        clocks: dict[int, VectorClock] = {}
        current: dict[int, VectorClock] = {
            p: VectorClock(self.n) for p in range(self.n)}
        for rec in self.events:
            vc = current[rec.process].copy()
            # Merge in the sender's clock for deliveries.
            preds = self.graph.pred[rec.seq]
            for pseq, edata in preds.items():
                if edata.get("relation") == "m":
                    vc.merge(clocks[pseq])
            vc.tick(rec.process)
            clocks[rec.seq] = vc
            current[rec.process] = vc.copy()
        return clocks

    def check_vc_agrees(self, sample: int | None = None,
                        rng=None) -> int:
        """Cross-check VC ordering against reachability on event pairs.

        Returns the number of pairs checked; raises ``AssertionError`` on
        the first disagreement.  ``sample`` bounds the number of pairs (all
        pairs when None) — the property-test suite calls this with modest
        samples to keep runtime sane.
        """
        clocks = self.vector_clocks()
        seqs = [r.seq for r in self.events]
        pairs: list[tuple[int, int]]
        if sample is None or len(seqs) ** 2 <= sample:
            pairs = [(a, b) for a in seqs for b in seqs if a != b]
        else:
            if rng is None:
                import numpy as np
                rng = np.random.default_rng(0)
            idx = rng.integers(0, len(seqs), size=(sample, 2))
            pairs = [(seqs[i], seqs[j]) for i, j in idx if i != j]
        for a, b in pairs:
            by_graph = self.happened_before(a, b)
            by_vc = clocks[a] < clocks[b]
            assert by_graph == by_vc, (
                f"hb oracle mismatch for events {a},{b}: "
                f"graph={by_graph}, vc={by_vc}")
        return len(pairs)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventGraph(events={len(self.events)}, "
                f"edges={self.graph.number_of_edges()})")
