"""Causality substrate: happened-before, vector clocks, consistency checks.

This package is the library's *referee*: protocols claim their checkpoints
form consistent global checkpoints (the paper's Theorem 2); the verifier
here independently decides, from the raw trace, whether that claim holds.
"""

from .consistency import (
    CheckpointRecord,
    ConsistencyVerifier,
    Orphan,
    cut_orphans,
    find_orphans,
)
from .happened_before import DEFAULT_EVENT_KINDS, EventGraph
from .recovery_line import (
    IntervalMessage,
    RecoveryLineResult,
    compute_recovery_line,
    compute_recovery_line_with_logs,
    domino_depth,
)
from .vector_clock import VectorClock

__all__ = [
    "CheckpointRecord",
    "ConsistencyVerifier",
    "DEFAULT_EVENT_KINDS",
    "EventGraph",
    "IntervalMessage",
    "Orphan",
    "RecoveryLineResult",
    "VectorClock",
    "compute_recovery_line",
    "compute_recovery_line_with_logs",
    "cut_orphans",
    "domino_depth",
    "find_orphans",
]
