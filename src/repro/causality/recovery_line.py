"""Recovery-line computation and domino-effect analysis.

Used by the **uncoordinated-checkpointing baseline** (paper §1's motivation):
with independent checkpoints and no logging, a failure can cascade — rolling
one process back orphans messages into others, forcing them back too, and so
on (the *domino effect*).  The optimistic protocol avoids this entirely
(recovery = last finalized ``S_k``); the recovery experiment (E8) quantifies
the difference.

Conventions
-----------
Process ``i`` has checkpoints ``0..K_i``; *interval* ``m`` is the execution
between checkpoint ``m`` and checkpoint ``m+1``.  A message sent in interval
``m_s`` is recorded by checkpoint index ``c`` iff ``c >= m_s + 1``; likewise
for receives.  A *cut* assigns each process a checkpoint index.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntervalMessage:
    """A message located by the checkpoint intervals of its endpoints."""

    src: int
    src_interval: int
    dst: int
    dst_interval: int
    uid: int = -1


@dataclass
class RecoveryLineResult:
    """Outcome of the rollback propagation."""

    #: Final consistent cut: pid -> checkpoint index.
    line: dict[int, int]
    #: Rollback distance per process (checkpoints discarded).
    rollbacks: dict[int, int]
    #: Number of propagation iterations (domino "depth").
    iterations: int

    @property
    def total_rollback(self) -> int:
        return sum(self.rollbacks.values())

    @property
    def processes_rolled_back(self) -> int:
        return sum(1 for d in self.rollbacks.values() if d > 0)


def compute_recovery_line(start: dict[int, int],
                          messages: list[IntervalMessage]) -> RecoveryLineResult:
    """Maximal consistent cut at-or-below ``start``.

    Standard fixpoint: while some message is an orphan w.r.t. the cut
    (receive recorded, send not), roll the receiver back just far enough to
    un-record the receive.  Terminates because indices only decrease and are
    bounded by 0 (checkpoint 0 = initial state, always consistent).

    Parameters
    ----------
    start:
        Initial cut, e.g. every process at its latest checkpoint, with the
        failed process already rolled to its restart checkpoint.
    messages:
        Every application message, located by sender/receiver intervals.
    """
    cut = dict(start)
    if any(v < 0 for v in cut.values()):
        raise ValueError(f"cut indices must be >= 0: {cut}")
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for m in messages:
            recv_recorded = cut[m.dst] >= m.dst_interval + 1
            send_recorded = cut[m.src] >= m.src_interval + 1
            if recv_recorded and not send_recorded:
                # Roll receiver back so the receive is no longer recorded.
                cut[m.dst] = m.dst_interval
                changed = True
    rollbacks = {pid: start[pid] - cut[pid] for pid in start}
    return RecoveryLineResult(line=cut, rollbacks=rollbacks,
                              iterations=iterations - 1)


def compute_recovery_line_with_logs(start: dict[int, int],
                                    messages: list[IntervalMessage],
                                    logged_uids: set[int]
                                    ) -> RecoveryLineResult:
    """Recovery line when receivers log messages (message-logging rescue).

    A logged message is replayable after rollback, so it never forces the
    *sender's* state to be recorded — i.e. logged messages are simply not
    orphan candidates.  With every message logged the line equals ``start``
    (no domino), matching the classic result that pessimistic/complete
    logging bounds rollback to the failed process.
    """
    pruned = [m for m in messages if m.uid not in logged_uids]
    return compute_recovery_line(start, pruned)


def domino_depth(result: RecoveryLineResult) -> int:
    """Maximum per-process rollback distance — the domino severity metric."""
    if not result.rollbacks:
        return 0
    return max(result.rollbacks.values())
