"""Vector clocks.

The checkpointing protocol itself does *not* need vector clocks — the paper
is explicit that (unlike [8]'s title suggests for other schemes) it works
with a scalar ``csn`` plus a process set.  We implement them anyway because
the *verifier* does: vector clocks give an O(1) happened-before test that
cross-checks the event-graph reachability test (two independent oracles for
the consistency invariant, per the property-test suite).
"""

from __future__ import annotations

from typing import Iterable


class VectorClock:
    """A fixed-width vector clock.

    Components are non-negative ints; component ``i`` counts events of
    process ``i`` known to the clock's owner.
    """

    __slots__ = ("v",)

    def __init__(self, n_or_vector: int | Iterable[int]) -> None:
        if isinstance(n_or_vector, int):
            if n_or_vector <= 0:
                raise ValueError(f"need n >= 1, got {n_or_vector}")
            self.v = [0] * n_or_vector
        else:
            self.v = [int(x) for x in n_or_vector]
            if not self.v:
                raise ValueError("vector must be non-empty")
            if any(x < 0 for x in self.v):
                raise ValueError(f"components must be >= 0: {self.v}")

    # -- protocol operations ------------------------------------------------

    def tick(self, pid: int) -> "VectorClock":
        """Local event at ``pid``: increment own component (returns self)."""
        self.v[pid] += 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise max with ``other`` (receive rule; returns self)."""
        if len(other.v) != len(self.v):
            raise ValueError("vector clocks of different widths")
        self.v = [max(a, b) for a, b in zip(self.v, other.v)]
        return self

    def copy(self) -> "VectorClock":
        """An independent copy of this clock."""
        return VectorClock(self.v)

    # -- ordering -----------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return all(a <= b for a, b in zip(self.v, other.v))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happened-before: ≤ in every component, < in at least one."""
        return self <= other and self.v != other.v

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.v == other.v

    def __hash__(self) -> int:
        return hash(tuple(self.v))

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock happened before the other."""
        return not (self < other) and not (other < self) and self != other

    def __len__(self) -> int:
        return len(self.v)

    def __getitem__(self, pid: int) -> int:
        return self.v[pid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.v}"
