"""Global-checkpoint consistency verification.

Paper §2.2: a global checkpoint is **consistent** iff it has no *orphan*
message — one whose receive is recorded in the global checkpoint while its
send is not.

Under the optimistic protocol, the events recorded by ``C_{i,k}`` are exactly
those that happened before the finalization event ``CFE_{i,k}`` (paper
equation (1)), with one carve-out: the message that *announces* a peer's
finalization is excluded from the log (the paper's ``M_8``/``M_9`` rule).
Protocol hosts therefore report, per finalized checkpoint, the precise uid
sets of application messages whose send/receive the checkpoint records; the
verifier here checks the no-orphan property over those sets.

Two layers:

* :func:`find_orphans` — pure set logic over :class:`CheckpointRecord`s;
* :class:`ConsistencyVerifier` — binds records to a trace so it can resolve
  each uid's endpoints and cross-check the recorded sets against raw
  delivery timestamps.

A third helper, :func:`cut_orphans`, checks arbitrary *time cuts* (used by
the Figure 1 scenario where checkpoints are plain time points, and by
baseline protocols whose checkpoints record state up to an instant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..des.trace import TraceRecorder


@dataclass(frozen=True)
class CheckpointRecord:
    """What one finalized checkpoint ``C_{pid, seq}`` records.

    ``sent_uids`` / ``recv_uids`` are the uids of application messages whose
    send / receive events the checkpoint captures — for the optimistic
    protocol this is (events before ``CT``) ∪ (events in ``logSet``), i.e.
    everything up to ``CFE`` minus the paper's excluded trigger messages.
    """

    pid: int
    seq: int
    taken_at: float
    finalized_at: float | None
    sent_uids: frozenset[int] = field(default_factory=frozenset)
    recv_uids: frozenset[int] = field(default_factory=frozenset)
    logged_uids: frozenset[int] = field(default_factory=frozenset)
    state_bytes: int = 0
    log_bytes: int = 0

    @property
    def finalized(self) -> bool:
        return self.finalized_at is not None


@dataclass(frozen=True)
class Orphan:
    """One consistency violation: uid received-but-not-sent w.r.t. a cut."""

    uid: int
    src: int
    dst: int
    seq: int

    def __str__(self) -> str:
        return (f"orphan message #{self.uid} P{self.src}->P{self.dst} "
                f"w.r.t. global checkpoint S_{self.seq}")


def find_orphans(records: dict[int, CheckpointRecord],
                 endpoints: dict[int, tuple[int, int]]) -> list[Orphan]:
    """Orphans of the global checkpoint formed by ``records``.

    Parameters
    ----------
    records:
        One :class:`CheckpointRecord` per pid; all must share a ``seq``.
    endpoints:
        Map uid -> (src, dst) for application messages (from the trace).

    Only messages between processes present in ``records`` are considered;
    a receive recorded for a message whose sender is outside the cut cannot
    be classified and raises ``KeyError`` by design (a global checkpoint
    must cover every process, paper §2.2).
    """
    seqs = {r.seq for r in records.values()}
    if len(seqs) > 1:
        raise ValueError(f"records span multiple sequence numbers: {sorted(seqs)}")
    seq = seqs.pop() if seqs else -1
    orphans: list[Orphan] = []
    for dst_pid, rec in records.items():
        for uid in sorted(rec.recv_uids):
            src, dst = endpoints[uid]
            if dst != dst_pid:
                raise ValueError(
                    f"record for P{dst_pid} claims receipt of #{uid} "
                    f"destined to P{dst}")
            sender_rec = records[src]
            if uid not in sender_rec.sent_uids:
                orphans.append(Orphan(uid=uid, src=src, dst=dst, seq=seq))
    return orphans


def cut_orphans(cut_times: dict[int, float], trace: TraceRecorder,
                kind: str = "app") -> list[Orphan]:
    """Orphans of a *time cut*: checkpoint of pid = its state at cut_times[pid].

    A message is an orphan iff it was delivered to ``dst`` strictly before
    ``cut_times[dst]`` but sent by ``src`` at-or-after ``cut_times[src]``.
    Used by the Figure 1 scenario and by baselines whose checkpoints are
    instantaneous state saves.
    """
    sends: dict[int, tuple[int, int, float]] = {}
    orphans: list[Orphan] = []
    for rec in trace:
        if rec.kind == "msg.send" and rec.data.get("kind") == kind:
            sends[rec.data["uid"]] = (rec.process, rec.data["dst"], rec.time)
        elif rec.kind == "msg.deliver" and rec.data.get("kind") == kind:
            uid = rec.data["uid"]
            src, dst, stime = sends[uid]
            if rec.time < cut_times[dst] and stime >= cut_times[src]:
                orphans.append(Orphan(uid=uid, src=src, dst=dst, seq=-1))
    return orphans


class ConsistencyVerifier:
    """Trace-backed verifier for finalized global checkpoints."""

    def __init__(self, trace: TraceRecorder) -> None:
        self.trace = trace
        self._endpoints: dict[int, tuple[int, int]] = {}
        self._send_time: dict[int, float] = {}
        self._deliver_time: dict[int, float] = {}
        for rec in trace:
            if rec.kind == "msg.send" and rec.data.get("kind") == "app":
                uid = rec.data["uid"]
                self._endpoints[uid] = (rec.process, rec.data["dst"])
                self._send_time[uid] = rec.time
            elif rec.kind == "msg.deliver" and rec.data.get("kind") == "app":
                self._deliver_time[rec.data["uid"]] = rec.time

    @property
    def endpoints(self) -> dict[int, tuple[int, int]]:
        """uid -> (src, dst) for every traced application message."""
        return self._endpoints

    def verify(self, records: dict[int, CheckpointRecord]) -> list[Orphan]:
        """Orphans for one global checkpoint (empty list == consistent)."""
        return find_orphans(records, self._endpoints)

    def verify_all(self, by_seq: dict[int, dict[int, CheckpointRecord]]
                   ) -> dict[int, list[Orphan]]:
        """Verify every complete global checkpoint; returns seq -> orphans."""
        return {seq: self.verify(records)
                for seq, records in sorted(by_seq.items())}

    def assert_consistent(self, by_seq: dict[int, dict[int, CheckpointRecord]]
                          ) -> int:
        """Raise ``AssertionError`` on any orphan; returns #cuts checked."""
        results = self.verify_all(by_seq)
        for seq, orphans in results.items():
            assert not orphans, (
                f"S_{seq} inconsistent: " + "; ".join(map(str, orphans)))
        return len(results)

    def cross_check_record(self, rec: CheckpointRecord,
                           cfe_time: float) -> None:
        """Validate a record's sets against raw trace timestamps.

        Everything recorded must have actually happened before the
        finalization instant — catches protocol-host bookkeeping bugs
        independently of the orphan check.
        """
        for uid in sorted(rec.sent_uids):
            st = self._send_time.get(uid)
            assert st is not None and st <= cfe_time, (
                f"P{rec.pid} C_{rec.seq} records send #{uid} at {st} "
                f"after CFE {cfe_time}")
        for uid in sorted(rec.recv_uids):
            dt = self._deliver_time.get(uid)
            assert dt is not None and dt <= cfe_time, (
                f"P{rec.pid} C_{rec.seq} records receive #{uid} at {dt} "
                f"after CFE {cfe_time}")
