"""Stable-storage and local-memory substrates.

The network file server of the paper is :class:`StableStorage` (FIFO queue +
disk service model with full contention telemetry); tentative checkpoints
and optimistic message logs live in :class:`LocalStore` until finalization.
"""

from .disk_model import DiskModel
from .local_store import LocalItem, LocalStore
from .networked import RemoteStorage, StorageServer, install_ack_shim
from .serialize import (
    checkpoint_from_dict,
    checkpoint_to_dict,
    control_message_from_dict,
    control_message_to_dict,
    dumps_checkpoint,
    export_run,
    import_run,
    loads_checkpoint,
    log_entry_from_dict,
    log_entry_to_dict,
    piggyback_from_dict,
    piggyback_to_dict,
)
from .space import SpaceKey, SpaceTracker
from .stable_storage import StableStorage, WriteRequest

__all__ = [
    "DiskModel",
    "LocalItem",
    "LocalStore",
    "RemoteStorage",
    "SpaceKey",
    "SpaceTracker",
    "StableStorage",
    "StorageServer",
    "WriteRequest",
    "checkpoint_from_dict",
    "install_ack_shim",
    "checkpoint_to_dict",
    "control_message_from_dict",
    "control_message_to_dict",
    "dumps_checkpoint",
    "export_run",
    "import_run",
    "loads_checkpoint",
    "log_entry_from_dict",
    "log_entry_to_dict",
    "piggyback_from_dict",
    "piggyback_to_dict",
]
