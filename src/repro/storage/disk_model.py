"""Service-time model for the stable-storage server's disk.

The paper's stable storage lives at a network file server; the dominant cost
of a checkpoint write is positioning (seek + rotational + request setup,
lumped into ``seek_time``) plus streaming the bytes at ``bandwidth``.

The model is deliberately first-order: the contention phenomena the paper
argues about (many clients writing *simultaneously* queue up behind one
another) emerge from queueing at the server, not from disk micro-behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Seek-plus-streaming service time.

    Attributes
    ----------
    seek_time:
        Fixed per-request overhead in simulated seconds.
    bandwidth:
        Sustained write bandwidth in bytes per simulated second.
    """

    seek_time: float = 0.01
    bandwidth: float = 50e6

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def service_time(self, nbytes: int) -> float:
        """Time to serve one write of ``nbytes`` once it reaches the disk."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.seek_time + nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskModel(seek={self.seek_time}, bw={self.bandwidth:.3g} B/s)"
