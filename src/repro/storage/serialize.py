"""Checkpoint and wire serialization: durable JSON forms of protocol data.

A real deployment writes checkpoints to files and sends protocol state
over sockets; downstream tools (recovery orchestrators, audits, the
:mod:`repro.live` runtime) need to read both back.  This module gives
every finalized checkpoint a self-contained JSON representation with a
round-trip guarantee, plus a whole-run export that mirrors what a file
server's checkpoint directory would contain, plus the *wire* encodings of
the paper's two cross-process payloads — the ``(csn, stat, tentSet)``
piggyback (§3.4.2) and the ``CM(type, csn)`` control message (§3.5.1) —
used verbatim by the live transports.

Every encoding is version-stamped and intentionally boring: checkpoint
files carry ``format_version`` (:data:`FORMAT_VERSION`), wire payloads
carry ``v`` (:data:`WIRE_VERSION`), and every decoder validates the stamp
so either format can evolve without silently misreading old data.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from ..core.types import (
    ControlMessage,
    ControlType,
    FinalizedCheckpoint,
    LogEntry,
    Piggyback,
    Status,
    TentativeCheckpoint,
)

#: On-disk checkpoint format version (files under a checkpoint directory).
FORMAT_VERSION = 1

#: Wire format version for cross-process payloads (piggybacks, control
#: messages, live-runtime frames).  Bumped independently of the checkpoint
#: file format — the two evolve on different schedules.  v1 was the
#: newline-JSON wire; v2 is the length-prefixed binary framing of
#: :mod:`repro.live.wire` with the struct-packed payload encodings below.
WIRE_VERSION = 2

#: Every wire version decoders still accept.  Encoders always stamp
#: :data:`WIRE_VERSION`; the accept-set is what lets a rolling upgrade
#: keep decoding the previous version's frames and journals.  REP106
#: statically checks that the stamped version (and v1) stay in this
#: tuple, that the set is contiguous, and that decoders test membership
#: rather than equality.
ACCEPTED_WIRE_VERSIONS = (1, 2)


def _check_wire_version(data: dict[str, Any], what: str) -> None:
    """Reject payloads stamped with an unknown wire version."""
    version = data.get("v")
    if version not in ACCEPTED_WIRE_VERSIONS:
        raise ValueError(
            f"unsupported {what} wire version {version!r} "
            f"(accepted: {ACCEPTED_WIRE_VERSIONS})")


def piggyback_to_dict(pb: Piggyback) -> dict[str, Any]:
    """JSON-ready form of the ``(csn, stat, tentSet)`` piggyback."""
    return {"v": WIRE_VERSION, "csn": pb.csn, "stat": pb.stat.value,
            "tent_set": sorted(pb.tent_set)}


def piggyback_from_dict(data: dict[str, Any]) -> Piggyback:
    """Inverse of :func:`piggyback_to_dict` (validates the version stamp)."""
    _check_wire_version(data, "piggyback")
    return Piggyback(csn=data["csn"], stat=Status(data["stat"]),
                     tent_set=frozenset(data["tent_set"]))


def control_message_to_dict(cm: ControlMessage) -> dict[str, Any]:
    """JSON-ready form of a ``CM(type, csn)`` control message."""
    return {"v": WIRE_VERSION, "ctype": cm.ctype.value, "csn": cm.csn}


def control_message_from_dict(data: dict[str, Any]) -> ControlMessage:
    """Inverse of :func:`control_message_to_dict` (validates the stamp)."""
    _check_wire_version(data, "control message")
    return ControlMessage(ctype=ControlType(data["ctype"]), csn=data["csn"])


# --------------------------------------------------------------------------
# binary (v2) payload packing — used by the length-prefixed live wire
# --------------------------------------------------------------------------

#: Status strings ↔ one-byte codes (append-only: codes are wire format).
_STATUS_CODES = {Status.NORMAL.value: 0, Status.TENTATIVE.value: 1}
_STATUS_NAMES = {code: name for name, code in _STATUS_CODES.items()}

#: ControlType strings ↔ one-byte codes (append-only: wire format).
_CTYPE_CODES = {ControlType.CK_BGN.value: 0, ControlType.CK_REQ.value: 1,
                ControlType.CK_END.value: 2}
_CTYPE_NAMES = {code: name for name, code in _CTYPE_CODES.items()}

#: Piggyback head: version B, csn I, stat-code B, tent-entry count H.
_PB_HEAD = struct.Struct("!BIBH")
#: One tent-set entry (a pid).
_PB_ENTRY = struct.Struct("!I")
#: Control message: version B, ctype-code B, csn I.
_CM_PACK = struct.Struct("!BBI")


def pack_piggyback(data: dict[str, Any]) -> bytes:
    """Struct-pack the dict form of a piggyback (version stamp carried
    through, so ``unpack_piggyback(pack_piggyback(d))`` round-trips the
    dict exactly — including a still-accepted older stamp)."""
    _check_wire_version(data, "piggyback")
    tent = sorted(data["tent_set"])
    if len(tent) > 0xFFFF:
        raise ValueError(
            f"piggyback tent_set of {len(tent)} entries exceeds the "
            f"wire limit (65535)")
    head = _PB_HEAD.pack(data["v"], data["csn"],
                         _STATUS_CODES[data["stat"]], len(tent))
    return head + b"".join(_PB_ENTRY.pack(pid) for pid in tent)


def unpack_piggyback(buf: bytes, offset: int = 0
                     ) -> tuple[dict[str, Any], int]:
    """Inverse of :func:`pack_piggyback`; returns ``(dict, next_offset)``."""
    version, csn, stat_code, count = _PB_HEAD.unpack_from(buf, offset)
    offset += _PB_HEAD.size
    if stat_code not in _STATUS_NAMES:
        raise ValueError(f"unknown piggyback status code {stat_code}")
    tent = [_PB_ENTRY.unpack_from(buf, offset + i * _PB_ENTRY.size)[0]
            for i in range(count)]
    offset += count * _PB_ENTRY.size
    data = {"v": version, "csn": csn, "stat": _STATUS_NAMES[stat_code],
            "tent_set": tent}
    _check_wire_version(data, "piggyback")
    return data, offset


def pack_control(data: dict[str, Any]) -> bytes:
    """Struct-pack the dict form of a ``CM(type, csn)`` control message."""
    _check_wire_version(data, "control message")
    return _CM_PACK.pack(data["v"], _CTYPE_CODES[data["ctype"]],
                         data["csn"])


def unpack_control(buf: bytes, offset: int = 0
                   ) -> tuple[dict[str, Any], int]:
    """Inverse of :func:`pack_control`; returns ``(dict, next_offset)``."""
    version, ctype_code, csn = _CM_PACK.unpack_from(buf, offset)
    if ctype_code not in _CTYPE_NAMES:
        raise ValueError(f"unknown control type code {ctype_code}")
    data = {"v": version, "ctype": _CTYPE_NAMES[ctype_code], "csn": csn}
    _check_wire_version(data, "control message")
    return data, offset + _CM_PACK.size


def log_entry_to_dict(entry: LogEntry) -> dict[str, Any]:
    """JSON-ready form of one selective-log entry."""
    return {"uid": entry.uid, "bytes": entry.nbytes,
            "direction": entry.direction, "time": entry.time}


def log_entry_from_dict(data: dict[str, Any]) -> LogEntry:
    """Inverse of :func:`log_entry_to_dict`."""
    return LogEntry(uid=data["uid"], nbytes=data["bytes"],
                    direction=data["direction"], time=data["time"])


def checkpoint_to_dict(fc: FinalizedCheckpoint) -> dict[str, Any]:
    """Plain-dict form of one finalized checkpoint (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "pid": fc.pid,
        "csn": fc.csn,
        "finalized_at": fc.finalized_at,
        "reason": fc.reason,
        "tentative": {
            "taken_at": fc.tentative.taken_at,
            "state_bytes": fc.tentative.state_bytes,
            "flushed_at": fc.tentative.flushed_at,
            "digest": fc.tentative.digest,
            "full": fc.tentative.full,
        },
        "log": [log_entry_to_dict(e) for e in fc.log_entries],
        "new_sent_uids": sorted(fc.new_sent_uids),
        "new_recv_uids": sorted(fc.new_recv_uids),
    }


def checkpoint_from_dict(data: dict[str, Any]) -> FinalizedCheckpoint:
    """Inverse of :func:`checkpoint_to_dict` (validates the version)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    t = data["tentative"]
    ct = TentativeCheckpoint(
        pid=data["pid"], csn=data["csn"], taken_at=t["taken_at"],
        state_bytes=t["state_bytes"], flushed_at=t["flushed_at"],
        digest=t.get("digest", 0), full=t.get("full", True))
    entries = [log_entry_from_dict(e) for e in data["log"]]
    return FinalizedCheckpoint(
        pid=data["pid"], csn=data["csn"], tentative=ct,
        finalized_at=data["finalized_at"], log_entries=entries,
        new_sent_uids=frozenset(data["new_sent_uids"]),
        new_recv_uids=frozenset(data["new_recv_uids"]),
        reason=data["reason"])


def dumps_checkpoint(fc: FinalizedCheckpoint) -> str:
    """JSON string of one checkpoint."""
    return json.dumps(checkpoint_to_dict(fc), sort_keys=True)


def loads_checkpoint(payload: str) -> FinalizedCheckpoint:
    """Parse a checkpoint produced by :func:`dumps_checkpoint`."""
    return checkpoint_from_dict(json.loads(payload))


def export_run(runtime: Any, *, gc_view: bool = False) -> dict[str, Any]:
    """Export finalized checkpoints of a run, keyed like a checkpoint
    directory (``"P<pid>/C<csn>"``), plus the complete-S_k index.

    ``gc_view=False`` (default) exports the full history every host still
    holds in memory — what the verification layer consumes.
    ``gc_view=True`` exports only the generations still *retained on stable
    storage* after garbage collection (each host's live ``_held_gens``):
    the directory a recovery orchestrator would actually find.
    """
    files: dict[str, Any] = {}
    for pid, host in runtime.hosts.items():
        held = getattr(host, "_held_gens", None)
        for csn, fc in host.finalized.items():
            if gc_view and held is not None and csn not in held:
                continue
            files[f"P{pid}/C{csn}"] = checkpoint_to_dict(fc)
    return {
        "format_version": FORMAT_VERSION,
        "n": runtime.n,
        "gc_view": gc_view,
        "complete_global_checkpoints": runtime.finalized_seqs(),
        "checkpoints": files,
    }


def import_run(data: dict[str, Any]) -> dict[int, dict[int, FinalizedCheckpoint]]:
    """Parse an :func:`export_run` payload into pid -> csn -> checkpoint."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported export format version")
    out: dict[int, dict[int, FinalizedCheckpoint]] = {}
    for key, blob in data["checkpoints"].items():
        fc = checkpoint_from_dict(blob)
        out.setdefault(fc.pid, {})[fc.csn] = fc
    return out
