"""Checkpoint and wire serialization: durable JSON forms of protocol data.

A real deployment writes checkpoints to files and sends protocol state
over sockets; downstream tools (recovery orchestrators, audits, the
:mod:`repro.live` runtime) need to read both back.  This module gives
every finalized checkpoint a self-contained JSON representation with a
round-trip guarantee, plus a whole-run export that mirrors what a file
server's checkpoint directory would contain, plus the *wire* encodings of
the paper's two cross-process payloads — the ``(csn, stat, tentSet)``
piggyback (§3.4.2) and the ``CM(type, csn)`` control message (§3.5.1) —
used verbatim by the live transports.

Every encoding is version-stamped and intentionally boring: checkpoint
files carry ``format_version`` (:data:`FORMAT_VERSION`), wire payloads
carry ``v`` (:data:`WIRE_VERSION`), and every decoder validates the stamp
so either format can evolve without silently misreading old data.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.types import (
    ControlMessage,
    ControlType,
    FinalizedCheckpoint,
    LogEntry,
    Piggyback,
    Status,
    TentativeCheckpoint,
)

#: On-disk checkpoint format version (files under a checkpoint directory).
FORMAT_VERSION = 1

#: Wire format version for cross-process payloads (piggybacks, control
#: messages, live-runtime frames).  Bumped independently of the checkpoint
#: file format — the two evolve on different schedules.
WIRE_VERSION = 1

#: Every wire version decoders still accept.  Encoders always stamp
#: :data:`WIRE_VERSION`; the accept-set is what lets a rolling upgrade
#: keep decoding the previous version's frames and journals.  REP106
#: statically checks that the stamped version (and v1) stay in this
#: tuple and that decoders test membership rather than equality.
ACCEPTED_WIRE_VERSIONS = (1,)


def _check_wire_version(data: dict[str, Any], what: str) -> None:
    """Reject payloads stamped with an unknown wire version."""
    version = data.get("v")
    if version not in ACCEPTED_WIRE_VERSIONS:
        raise ValueError(
            f"unsupported {what} wire version {version!r} "
            f"(accepted: {ACCEPTED_WIRE_VERSIONS})")


def piggyback_to_dict(pb: Piggyback) -> dict[str, Any]:
    """JSON-ready form of the ``(csn, stat, tentSet)`` piggyback."""
    return {"v": WIRE_VERSION, "csn": pb.csn, "stat": pb.stat.value,
            "tent_set": sorted(pb.tent_set)}


def piggyback_from_dict(data: dict[str, Any]) -> Piggyback:
    """Inverse of :func:`piggyback_to_dict` (validates the version stamp)."""
    _check_wire_version(data, "piggyback")
    return Piggyback(csn=data["csn"], stat=Status(data["stat"]),
                     tent_set=frozenset(data["tent_set"]))


def control_message_to_dict(cm: ControlMessage) -> dict[str, Any]:
    """JSON-ready form of a ``CM(type, csn)`` control message."""
    return {"v": WIRE_VERSION, "ctype": cm.ctype.value, "csn": cm.csn}


def control_message_from_dict(data: dict[str, Any]) -> ControlMessage:
    """Inverse of :func:`control_message_to_dict` (validates the stamp)."""
    _check_wire_version(data, "control message")
    return ControlMessage(ctype=ControlType(data["ctype"]), csn=data["csn"])


def log_entry_to_dict(entry: LogEntry) -> dict[str, Any]:
    """JSON-ready form of one selective-log entry."""
    return {"uid": entry.uid, "bytes": entry.nbytes,
            "direction": entry.direction, "time": entry.time}


def log_entry_from_dict(data: dict[str, Any]) -> LogEntry:
    """Inverse of :func:`log_entry_to_dict`."""
    return LogEntry(uid=data["uid"], nbytes=data["bytes"],
                    direction=data["direction"], time=data["time"])


def checkpoint_to_dict(fc: FinalizedCheckpoint) -> dict[str, Any]:
    """Plain-dict form of one finalized checkpoint (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "pid": fc.pid,
        "csn": fc.csn,
        "finalized_at": fc.finalized_at,
        "reason": fc.reason,
        "tentative": {
            "taken_at": fc.tentative.taken_at,
            "state_bytes": fc.tentative.state_bytes,
            "flushed_at": fc.tentative.flushed_at,
            "digest": fc.tentative.digest,
            "full": fc.tentative.full,
        },
        "log": [log_entry_to_dict(e) for e in fc.log_entries],
        "new_sent_uids": sorted(fc.new_sent_uids),
        "new_recv_uids": sorted(fc.new_recv_uids),
    }


def checkpoint_from_dict(data: dict[str, Any]) -> FinalizedCheckpoint:
    """Inverse of :func:`checkpoint_to_dict` (validates the version)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format version {version!r} "
            f"(expected {FORMAT_VERSION})")
    t = data["tentative"]
    ct = TentativeCheckpoint(
        pid=data["pid"], csn=data["csn"], taken_at=t["taken_at"],
        state_bytes=t["state_bytes"], flushed_at=t["flushed_at"],
        digest=t.get("digest", 0), full=t.get("full", True))
    entries = [log_entry_from_dict(e) for e in data["log"]]
    return FinalizedCheckpoint(
        pid=data["pid"], csn=data["csn"], tentative=ct,
        finalized_at=data["finalized_at"], log_entries=entries,
        new_sent_uids=frozenset(data["new_sent_uids"]),
        new_recv_uids=frozenset(data["new_recv_uids"]),
        reason=data["reason"])


def dumps_checkpoint(fc: FinalizedCheckpoint) -> str:
    """JSON string of one checkpoint."""
    return json.dumps(checkpoint_to_dict(fc), sort_keys=True)


def loads_checkpoint(payload: str) -> FinalizedCheckpoint:
    """Parse a checkpoint produced by :func:`dumps_checkpoint`."""
    return checkpoint_from_dict(json.loads(payload))


def export_run(runtime: Any, *, gc_view: bool = False) -> dict[str, Any]:
    """Export finalized checkpoints of a run, keyed like a checkpoint
    directory (``"P<pid>/C<csn>"``), plus the complete-S_k index.

    ``gc_view=False`` (default) exports the full history every host still
    holds in memory — what the verification layer consumes.
    ``gc_view=True`` exports only the generations still *retained on stable
    storage* after garbage collection (each host's live ``_held_gens``):
    the directory a recovery orchestrator would actually find.
    """
    files: dict[str, Any] = {}
    for pid, host in runtime.hosts.items():
        held = getattr(host, "_held_gens", None)
        for csn, fc in host.finalized.items():
            if gc_view and held is not None and csn not in held:
                continue
            files[f"P{pid}/C{csn}"] = checkpoint_to_dict(fc)
    return {
        "format_version": FORMAT_VERSION,
        "n": runtime.n,
        "gc_view": gc_view,
        "complete_global_checkpoints": runtime.finalized_seqs(),
        "checkpoints": files,
    }


def import_run(data: dict[str, Any]) -> dict[int, dict[int, FinalizedCheckpoint]]:
    """Parse an :func:`export_run` payload into pid -> csn -> checkpoint."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError("unsupported export format version")
    out: dict[int, dict[int, FinalizedCheckpoint]] = {}
    for key, blob in data["checkpoints"].items():
        fc = checkpoint_from_dict(blob)
        out.setdefault(fc.pid, {})[fc.csn] = fc
    return out
