"""The shared stable-storage (network file server) model.

This is where the paper's central performance claim lives.  Synchronous
checkpointing makes all N processes flush state at (nearly) the same instant;
the file server serializes those writes, so each client waits behind the
others — *contention*.  The optimistic protocol spreads flushes out in time,
so the queue stays short.

:class:`StableStorage` is a single FIFO queue in front of ``servers``
identical disks (default 1, the paper's single file server).  Every write is
fully instrumented:

* per-request arrival / start / finish timestamps (⇒ waiting time);
* a queue-length step series over time;
* "pending" (arrived but unfinished) step series, whose maximum is the
  *peak concurrent writers* statistic the contention experiments report;
* busy time per server (⇒ utilization).

Writes complete asynchronously: callers get a :class:`WriteRequest` and may
pass a completion callback — the protocol layer uses this to model processes
that block on the flush (Koo-Toueg) versus those that fire-and-forget (the
optimistic protocol's convenient-time flush).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..des.engine import Simulator
from ..des.events import EventPriority
from .disk_model import DiskModel
from .space import SpaceTracker


@dataclass
class WriteRequest:
    """One write's lifecycle record."""

    pid: int
    nbytes: int
    label: str
    arrive: float
    start: float | None = None
    finish: float | None = None
    callback: Callable[["WriteRequest"], None] | None = field(
        default=None, repr=False)

    @property
    def wait(self) -> float:
        """Queueing delay (start - arrive); 0.0 while still queued."""
        if self.start is None:
            return 0.0
        return self.start - self.arrive

    @property
    def latency(self) -> float:
        """Total client-visible time (finish - arrive)."""
        if self.finish is None:
            return 0.0
        return self.finish - self.arrive

    @property
    def done(self) -> bool:
        return self.finish is not None


class StableStorage:
    """FIFO stable-storage server with full contention telemetry.

    Parameters
    ----------
    sim:
        Simulator for scheduling completions.
    disk:
        Service-time model.
    servers:
        Number of identical disks serving the queue (paper: 1).
    """

    def __init__(self, sim: Simulator, disk: DiskModel | None = None,
                 servers: int = 1) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.sim = sim
        self.disk = disk if disk is not None else DiskModel()
        self.servers = servers
        #: Logical space ledger; protocol hosts retain/release checkpoint
        #: blobs here so experiments can compare storage footprints (E13).
        self.space = SpaceTracker()
        self.requests: list[WriteRequest] = []
        self._queue: list[WriteRequest] = []
        self._busy = 0
        self._busy_time = 0.0
        #: (time, queue_length) steps — length counts *waiting* requests.
        self.queue_series: list[tuple[float, int]] = [(0.0, 0)]
        #: (time, pending) steps — arrived but unfinished requests.
        self.pending_series: list[tuple[float, int]] = [(0.0, 0)]
        self._pending = 0

    # -- client API ---------------------------------------------------------

    def write(self, pid: int, nbytes: int, label: str = "",
              callback: Callable[[WriteRequest], None] | None = None
              ) -> WriteRequest:
        """Submit a write; returns immediately with the request handle.

        ``callback(req)`` fires at completion time (if given).  The write is
        traced as ``storage.write.arrive`` / ``.start`` / ``.finish`` with
        the submitting ``pid`` so experiments can attribute contention.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        req = WriteRequest(pid=pid, nbytes=nbytes, label=label,
                           arrive=self.sim.now, callback=callback)
        self.requests.append(req)
        self._pending += 1
        self.pending_series.append((self.sim.now, self._pending))
        self.sim.trace.record(self.sim.now, "storage.write.arrive", pid,
                              bytes=nbytes, label=label)
        if self._busy < self.servers:
            self._start(req)
        else:
            self._queue.append(req)
            self.queue_series.append((self.sim.now, len(self._queue)))
        return req

    # -- internals ----------------------------------------------------------

    def _start(self, req: WriteRequest) -> None:
        self._busy += 1
        req.start = self.sim.now
        service = self.disk.service_time(req.nbytes)
        self.sim.trace.record(self.sim.now, "storage.write.start", req.pid,
                              bytes=req.nbytes, label=req.label,
                              wait=req.wait)
        self.sim.schedule(service, lambda: self._finish(req),
                          priority=EventPriority.MONITOR)

    def _finish(self, req: WriteRequest) -> None:
        req.finish = self.sim.now
        self._busy -= 1
        self._busy_time += req.finish - req.start
        self._pending -= 1
        self.pending_series.append((self.sim.now, self._pending))
        self.sim.trace.record(self.sim.now, "storage.write.finish", req.pid,
                              bytes=req.nbytes, label=req.label,
                              latency=req.latency)
        if self._queue:
            nxt = self._queue.pop(0)
            self.queue_series.append((self.sim.now, len(self._queue)))
            self._start(nxt)
        if req.callback is not None:
            req.callback(req)

    # -- telemetry ----------------------------------------------------------

    def peak_pending(self) -> int:
        """Maximum simultaneous outstanding writes — the headline contention
        number ("how many processes wanted the file server at once")."""
        if not self.pending_series:
            return 0
        return max(v for _, v in self.pending_series)

    def peak_queue(self) -> int:
        """Maximum queue length (excludes in-service requests)."""
        if not self.queue_series:
            return 0
        return max(v for _, v in self.queue_series)

    def waits(self) -> np.ndarray:
        """Array of per-request queueing waits (completed requests only)."""
        return np.array([r.wait for r in self.requests if r.done], dtype=float)

    def total_wait(self) -> float:
        """Sum of queueing delays — aggregate contention cost."""
        w = self.waits()
        return float(w.sum()) if w.size else 0.0

    def mean_wait(self) -> float:
        """Mean queueing delay over completed requests (0.0 if none)."""
        w = self.waits()
        return float(w.mean()) if w.size else 0.0

    def max_wait(self) -> float:
        """Worst single queueing delay."""
        w = self.waits()
        return float(w.max()) if w.size else 0.0

    def busy_time(self) -> float:
        """Total server busy time accumulated so far."""
        return self._busy_time

    def utilization(self, makespan: float | None = None) -> float:
        """Busy fraction over ``makespan`` (defaults to sim.now)."""
        horizon = self.sim.now if makespan is None else makespan
        if horizon <= 0:
            return 0.0
        return self._busy_time / (horizon * self.servers)

    def completed(self) -> int:
        """Number of finished writes."""
        return sum(1 for r in self.requests if r.done)

    def outstanding(self) -> int:
        """Arrived but unfinished writes right now."""
        return self._pending

    def bytes_written(self) -> int:
        """Total bytes in completed writes."""
        return sum(r.nbytes for r in self.requests if r.done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StableStorage(servers={self.servers}, "
                f"completed={self.completed()}, peak={self.peak_pending()})")
