"""Per-process local (volatile) store for tentative checkpoints and logs.

The optimistic protocol's whole point: the tentative checkpoint and the
message log live in *local memory* first and move to stable storage at the
process's convenience.  :class:`LocalStore` models that memory: it tracks
what is held, its size, and the high-water mark — the protocol's memory
overhead, which experiments report alongside the storage-contention wins
(nothing is free; the paper trades server contention for local buffering).

Local holds are volatile: a crash loses them, which is why recovery can only
use *finalized* checkpoints (see :mod:`repro.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class LocalItem:
    """One buffered object (a tentative checkpoint or a logged message)."""

    label: str
    nbytes: int
    stored_at: float
    payload: Any = field(default=None, repr=False)


class LocalStore:
    """Volatile per-process buffer with byte accounting."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.items: dict[str, LocalItem] = {}
        self._bytes = 0
        self.max_bytes = 0
        #: Cumulative bytes ever buffered (for turnover statistics).
        self.total_buffered = 0

    def put(self, label: str, nbytes: int, at: float,
            payload: Any = None) -> LocalItem:
        """Buffer an object; replaces any same-labelled previous object.

        Replacement mutates the existing :class:`LocalItem` in place —
        the protocol hot path re-puts the growing message log once per
        logged message, and an allocation per re-put is measurable.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        item = self.items.get(label)
        if item is not None:
            self._bytes += nbytes - item.nbytes
            item.nbytes = nbytes
            item.stored_at = at
            item.payload = payload
        else:
            item = LocalItem(label=label, nbytes=nbytes, stored_at=at,
                             payload=payload)
            self.items[label] = item
            self._bytes += nbytes
        self.total_buffered += nbytes
        if self._bytes > self.max_bytes:
            self.max_bytes = self._bytes
        return item

    def pop(self, label: str) -> LocalItem:
        """Remove and return a buffered object (KeyError if absent)."""
        item = self.items.pop(label)
        self._bytes -= item.nbytes
        return item

    def discard(self, label: str) -> bool:
        """Remove if present; returns whether something was removed."""
        if label in self.items:
            self.pop(label)
            return True
        return False

    def clear(self) -> None:
        """Drop everything (models a crash wiping volatile memory)."""
        self.items.clear()
        self._bytes = 0

    @property
    def bytes_held(self) -> int:
        """Current buffered bytes."""
        return self._bytes

    def __contains__(self, label: str) -> bool:
        return label in self.items

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LocalStore(pid={self.pid}, items={len(self.items)}, "
                f"bytes={self._bytes}, max={self.max_bytes})")
