"""Network-coupled stable storage: the file server as a network node.

The plain :class:`~repro.storage.stable_storage.StableStorage` teleports
write requests to the server; real checkpoint data crosses the *same
network* the application uses.  This module adds that coupling:

* :class:`StorageServer` — a :class:`~repro.des.process.SimProcess` at an
  extra topology node that owns an inner :class:`StableStorage`; write
  requests arrive as ``kind="storage"`` messages whose size is the
  checkpoint payload, queue at the disk, and are acknowledged with a small
  reply message;
* :class:`RemoteStorage` — a client facade with the same surface protocol
  hosts already use (``write``/telemetry/``space``), so every protocol
  runs unchanged over networked storage.

The payoff (experiment E17): with finite NIC bandwidth, a synchronous
protocol's N simultaneous checkpoint transfers congest the senders' NICs
and *delay application messages* — the "network contention ... extend the
overall execution time" effect the paper cites from Vaidya [11].  The
optimistic protocol's spread-out flushes barely perturb the application.

Timing note: the client-side completion callback fires when the *ack*
arrives (transfer + queue + disk + ack), which is what a blocking client
would observe; the inner request's ``finish`` remains the disk-completion
instant used by contention telemetry.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

import numpy as np

from ..des.engine import Simulator
from ..des.process import SimProcess
from ..net.message import Message
from ..net.network import Network
from .space import SpaceTracker
from .stable_storage import StableStorage, WriteRequest

ACK_BYTES = 16


class StorageServer(SimProcess):
    """The file-server node: receives write messages, serves them on the
    inner disk, acknowledges completion."""

    def __init__(self, pid: int, sim: Simulator,
                 inner: StableStorage) -> None:
        super().__init__(pid, sim)
        self.inner = inner

    def on_message(self, msg: Message) -> None:
        """Serve one write request message."""
        if msg.kind != "storage":
            raise ValueError(
                f"storage server got unexpected kind {msg.kind!r}")
        op, req_id, label = msg.payload
        if op != "write":  # pragma: no cover - defensive
            raise ValueError(f"unknown storage op {op!r}")
        origin = msg.src

        def done(req: WriteRequest) -> None:
            # The ack carries the completed request record itself so the
            # client callback gets exact per-request timing even when the
            # same origin has several writes in flight.
            self.network.send(self.pid, origin, ("done", req_id, req),
                              kind="storage-ack",
                              overhead_bytes=ACK_BYTES)

        # The message's payload size IS the checkpoint data; the disk
        # serves exactly those bytes.
        self.inner.write(origin, msg.size, label=label, callback=done)


class RemoteStorage:
    """Client facade: StableStorage-compatible API over the network.

    One shared instance serves every protocol host (writes are sent *from*
    the calling pid, so NIC accounting lands on the right sender).
    Telemetry delegates to the inner server-side storage.
    """

    def __init__(self, network: Network, server: StorageServer) -> None:
        self.network = network
        self.server = server
        self._req_ids = itertools.count(1)
        #: req_id -> client completion callback (or None).
        self._pending: dict[int, Callable[[WriteRequest], None] | None] = {}
        #: Client-visible round-trip latencies (submit -> ack).
        self.client_latencies: list[float] = []
        self._submit_times: dict[int, float] = {}
        # Ack dispatch: piggyback on the origin processes' message handling
        # is protocol-owned, so the facade intercepts via a network gate-
        # free path: hosts forward storage-ack messages here (see
        # ``handle_ack``) — the harness installs a tiny shim on each host.

    # -- StableStorage-compatible surface ------------------------------------------

    def write(self, pid: int, nbytes: int, label: str = "",
              callback: Callable[[WriteRequest], None] | None = None
              ) -> None:
        """Ship ``nbytes`` from ``pid`` to the file server over the network."""
        req_id = next(self._req_ids)
        self._pending[req_id] = callback
        self._submit_times[req_id] = self.network.sim.now
        self.network.send(pid, self.server.pid, ("write", req_id, label),
                          size=nbytes, kind="storage")

    def handle_ack(self, msg: Message) -> None:
        """Complete a write on ack arrival (invoked by the host shim)."""
        _, req_id, req = msg.payload
        callback = self._pending.pop(req_id, None)
        submit = self._submit_times.pop(req_id, None)
        if submit is not None:
            self.client_latencies.append(self.network.sim.now - submit)
        if callback is not None:
            callback(req)

    # -- telemetry delegation ----------------------------------------------------------

    @property
    def inner(self) -> StableStorage:
        """The server-side storage (full telemetry lives here)."""
        return self.server.inner

    @property
    def space(self) -> SpaceTracker:
        """The shared checkpoint-space ledger."""
        return self.server.inner.space

    @property
    def requests(self) -> list[WriteRequest]:
        """Inner write requests (disk-side timing)."""
        return self.server.inner.requests

    @property
    def pending_series(self):
        """Inner pending-writers step series."""
        return self.server.inner.pending_series

    def outstanding(self) -> int:
        """Writes submitted but not yet acknowledged (client view)."""
        return len(self._pending)

    def peak_pending(self) -> int:
        """Delegates to the inner storage."""
        return self.server.inner.peak_pending()

    def waits(self) -> np.ndarray:
        """Delegates to the inner storage."""
        return self.server.inner.waits()

    def mean_wait(self) -> float:
        """Delegates to the inner storage."""
        return self.server.inner.mean_wait()

    def max_wait(self) -> float:
        """Delegates to the inner storage."""
        return self.server.inner.max_wait()

    def total_wait(self) -> float:
        """Delegates to the inner storage."""
        return self.server.inner.total_wait()

    def utilization(self, makespan: float | None = None) -> float:
        """Delegates to the inner storage."""
        return self.server.inner.utilization(makespan)

    def completed(self) -> int:
        """Delegates to the inner storage."""
        return self.server.inner.completed()

    def bytes_written(self) -> int:
        """Delegates to the inner storage."""
        return self.server.inner.bytes_written()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RemoteStorage(server=P{self.server.pid}, "
                f"outstanding={self.outstanding()})")


def install_ack_shim(host: Any, remote: RemoteStorage) -> None:
    """Route ``storage-ack`` deliveries at ``host`` to the facade.

    Wraps the host's ``on_message`` so acks never reach protocol logic;
    every other message passes through untouched.
    """
    original = host.on_message

    def dispatch(msg: Message) -> None:
        if msg.kind == "storage-ack":
            remote.handle_ack(msg)
        else:
            original(msg)

    host.on_message = dispatch
