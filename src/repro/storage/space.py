"""Stable-storage space accounting and checkpoint garbage collection.

The paper's §1, on why coordinated schemes are storage-frugal: *"Only
limited storage space is required for storing the checkpoints.  All
checkpoints taken before the latest committed global checkpoint can be
deleted to save space."*  Under the optimistic protocol, a process may
delete ``C_{i,k-1}`` the moment it finalizes ``C_{i,k}`` — finalizing ``k``
implies every process took a tentative checkpoint ``k``, which implies
every process finalized ``k-1``, so ``S_{k-1}`` is committed and ``S_k``
will be the recovery line once complete (and ``S_{k-1}`` remains usable
until then, hence we retain exactly the last two generations).

Uncoordinated checkpointing, by contrast, cannot safely delete *anything*
without a global garbage-collection protocol: the domino effect may roll
any process back to any of its checkpoints.  Index-based CIC likewise needs
extra coordination to learn the globally-minimal index.  Experiment E13
quantifies the resulting footprint gap.

:class:`SpaceTracker` is a passive ledger: protocol hosts ``retain`` a
keyed blob when it reaches stable storage and ``release`` it when garbage
collected; the tracker maintains the total-bytes step series whose maximum
is the *peak stable-storage footprint*.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpaceKey:
    """Identity of one retained blob: (owner pid, label)."""

    pid: int
    label: str


class SpaceTracker:
    """Ledger of retained stable-storage bytes over simulated time."""

    def __init__(self) -> None:
        self._held: dict[SpaceKey, int] = {}
        self._total = 0
        #: (time, total_bytes) step series.
        self.series: list[tuple[float, int]] = [(0.0, 0)]
        self.retained_ever = 0
        self.released_ever = 0

    # -- ledger operations ---------------------------------------------------

    def retain(self, pid: int, label: str, nbytes: int, at: float) -> None:
        """Record ``nbytes`` of stable storage held under ``(pid, label)``.

        Re-retaining an existing key replaces its size (idempotent updates
        are convenient for bundled CT+log writes).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        key = SpaceKey(pid, label)
        old = self._held.get(key, 0)
        self._held[key] = nbytes
        self._total += nbytes - old
        self.retained_ever += max(nbytes - old, 0)
        self.series.append((at, self._total))

    def release(self, pid: int, label: str, at: float) -> bool:
        """Free a retained blob; returns whether the key was held."""
        key = SpaceKey(pid, label)
        nbytes = self._held.pop(key, None)
        if nbytes is None:
            return False
        self._total -= nbytes
        self.released_ever += nbytes
        self.series.append((at, self._total))
        return True

    def release_matching(self, pid: int, prefix: str, at: float) -> int:
        """Free every blob of ``pid`` whose label starts with ``prefix``."""
        keys = [k for k in self._held
                if k.pid == pid and k.label.startswith(prefix)]
        for k in keys:
            self.release(k.pid, k.label, at)
        return len(keys)

    # -- telemetry --------------------------------------------------------------

    @property
    def held_bytes(self) -> int:
        """Currently retained stable-storage bytes."""
        return self._total

    def held_by(self, pid: int) -> int:
        """Bytes currently retained by one process."""
        return sum(v for k, v in self._held.items() if k.pid == pid)

    def peak_bytes(self) -> int:
        """High-water mark of the footprint."""
        return max((v for _, v in self.series), default=0)

    def blobs(self) -> int:
        """Number of retained blobs right now."""
        return len(self._held)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpaceTracker(held={self._total}B in {len(self._held)} "
                f"blobs, peak={self.peak_bytes()}B)")
