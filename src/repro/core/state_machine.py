"""The protocol state machine — Figures 3 and 4 of the paper, verbatim.

Pure logic: every handler consumes an input (an application-message
piggyback, a control message, a timer expiry, an initiation request) and
returns a list of :mod:`~repro.core.effects` commands for the host to
execute.  No simulator, network or storage access happens here.

Each branch is annotated with the paper case it implements (§3.4.3's
Cases 1–4 with sub-cases, §3.5.1's control-message rules).  The two
§3.5.1 optimizations are individually switchable so the ablation
experiment (E12) can measure their value:

* ``suppress_ck_bgn`` — Case (1): a timed-out process stays silent when a
  lower-id process is known (via ``tentSet``) to have taken the tentative
  checkpoint, because that process (or a lower one) will notify ``P_0``.
* ``skip_ck_req`` — Case (2): when forwarding ``CK_REQ``, jump over the
  contiguous run of processes already known tentative.

Deviations from the paper's pseudocode (documented, switchable):

* **Timer re-arm with escalation.**  The paper's Case-(1) optimization has
  a liveness hole it acknowledges (a suppressed process may never learn of
  finalization if the lower-id process finalized and went silent); the
  paper's fix is "P_0 always broadcasts CK_END when it finalizes"
  (``p0_broadcast_on_finalize``, default on, faithful).  As a belt-and-
  braces measure the timer also re-arms after a suppressed expiry and
  *escalates* (ignores suppression) on the second consecutive expiry for
  the same csn — with the broadcast fix on, escalation virtually never
  triggers, and turning the broadcast off (ablation) remains live.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .effects import (
    Anomaly,
    ArmTimer,
    BroadcastControl,
    CancelTimer,
    Effect,
    Finalize,
    SendControl,
    TakeTentative,
)
from .types import ControlMessage, ControlType, Piggyback, Status

COORDINATOR = 0  # the paper's pre-specified process P_0

#: Shared "no effects" result for the hot no-op receive cases (Cases 1,
#: 2(a), 3(a), 4(a) are the overwhelming majority of receives).  Callers
#: only iterate effect lists — never mutate them — so one shared empty
#: list avoids an allocation per delivered message.
_NO_EFFECTS: list[Effect] = []


@dataclass
class MachineConfig:
    """Switches for the state machine's optional behaviours."""

    #: Enable the §3.5.1 control-message plane at all.  With ``False`` the
    #: machine is exactly the *basic* algorithm of Figure 3 (timer expiries
    #: are ignored) — may not converge, which E2/E9 demonstrate.
    control_messages: bool = True
    #: §3.5.1 Case (1): suppress redundant CK_BGN when a lower id is tentative.
    suppress_ck_bgn: bool = True
    #: §3.5.1 Case (2): skip known-tentative processes when forwarding CK_REQ.
    skip_ck_req: bool = True
    #: The paper's fix for the Case-(1) liveness hole: P_0 broadcasts CK_END
    #: whenever it finalizes a checkpoint.
    p0_broadcast_on_finalize: bool = True
    #: Re-arm + escalate timers (see module docstring).
    timer_escalation: bool = True
    #: Fast path the paper's pseudocode *omits*: in Cases 4(b)/2(c) the
    #: tentSet merged right after taking a tentative checkpoint may already
    #: equal allPSet (the sender knew everyone else), in which case the
    #: process could finalize immediately instead of waiting for the next
    #: message or the timer.  Off by default for pseudocode fidelity; the
    #: E12 ablations measure what it is worth.
    finalize_on_complete_knowledge: bool = False


class OptimisticStateMachine:
    """Per-process protocol state (§3.3) and transition rules (§3.4, §3.5)."""

    def __init__(self, pid: int, n: int,
                 config: MachineConfig | None = None) -> None:
        if not (0 <= pid < n):
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self.config = config if config is not None else MachineConfig()
        self.all_pset = frozenset(range(n))
        # §3.3 data structures -------------------------------------------------
        self.csn = 0                       # csn_i  (initial checkpoint = 0)
        self.stat = Status.NORMAL          # stat_i
        self.tent_set: set[int] = set()    # tentSet_i (empty while normal)
        # control-plane bookkeeping -------------------------------------------
        self._ck_req_sent: set[int] = set()   # csns for which CK_REQ went out
        self._ck_end_sent: set[int] = set()   # csns for which CK_END broadcast
        self._ck_bgn_sent: set[int] = set()   # csns for which CK_BGN went out
        self._suppressed_csn: int | None = None  # last csn whose CK_BGN was
        #                                           suppressed (escalation)
        # Interned piggyback: (csn, stat, tentSet) only changes on protocol
        # transitions, so the frozen triple is built once per transition and
        # reused by every send in between.  Invalidated (set to None) at
        # every mutation of csn/stat/tent_set.
        self._pb: Piggyback | None = None

    # -- inspection ----------------------------------------------------------

    @property
    def tentative(self) -> bool:
        return self.stat is Status.TENTATIVE

    def piggyback(self) -> Piggyback:
        """Current ``(csn, stat, tentSet)`` for outgoing app messages.

        Interned: repeated calls between protocol transitions return the
        *same* (immutable) instance instead of re-freezing ``tent_set``
        per send.
        """
        pb = self._pb
        if pb is None:
            self._pb = pb = Piggyback(csn=self.csn, stat=self.stat,
                                      tent_set=frozenset(self.tent_set))
        return pb

    def _merge_tent_set(self, other: frozenset[int]) -> None:
        """Absorb a peer's tentSet knowledge; invalidates the interned
        piggyback only when the merge actually added members (repeated
        piggybacks from the same neighbourhood usually add nothing)."""
        ts = self.tent_set
        before = len(ts)
        ts |= other
        if len(ts) != before:
            self._pb = None

    def restore(self, csn: int, stat: Status, tent_set: set[int]) -> None:
        """Overwrite the §3.3 triple in one step (rollback / state import).

        External callers (recovery, the model checker's state explorer,
        the live runtime) must use this instead of assigning the fields
        directly so the interned piggyback is invalidated.
        """
        self.csn = csn
        self.stat = stat
        self.tent_set = tent_set
        self._pb = None

    # -- §3.4.1: initiation ----------------------------------------------------

    def initiate(self) -> list[Effect]:
        """Start a new consistent global checkpoint (scheduled basic ckpt).

        Returns ``[]`` when the process is still tentative — the paper
        forbids a new tentative checkpoint before the current one is
        finalized, so a scheduled initiation that lands inside an unfinished
        round is simply skipped (this is also why the protocol never takes
        more than one checkpoint per interval).
        """
        if self.tentative:
            return _NO_EFFECTS
        return self._take_tentative()

    def _take_tentative(self) -> list[Effect]:
        """Procedure takeTentativeCheckpoint(i) of Figure 3."""
        self.csn += 1
        self.stat = Status.TENTATIVE
        self.tent_set = {self.pid}
        self._pb = None
        effects: list[Effect] = [TakeTentative(csn=self.csn)]
        if self.config.control_messages:
            effects.append(ArmTimer(csn=self.csn))
        return effects

    def _maybe_fast_finalize(self) -> list[Effect]:
        """Optional fast path after a take-and-merge (see MachineConfig)."""
        if (self.config.finalize_on_complete_knowledge
                and self.tentative and self.tent_set == self.all_pset):
            return self._finalize(exclude_uid=None,
                                  reason="piggyback.fastpath")
        return _NO_EFFECTS

    def _finalize(self, exclude_uid: int | None, reason: str) -> list[Effect]:
        """§3.4.4: flush CT + log, return to normal, clear tentSet."""
        csn = self.csn
        self.stat = Status.NORMAL
        self.tent_set = set()
        self._pb = None
        self._suppressed_csn = None
        effects: list[Effect] = [
            Finalize(csn=csn, exclude_uid=exclude_uid, reason=reason),
            CancelTimer(),
        ]
        # The paper's fix for the CK_BGN-suppression liveness hole: P_0
        # announces every finalization so suppressed processes always learn.
        if (self.config.control_messages
                and self.config.p0_broadcast_on_finalize
                and self.pid == COORDINATOR
                and csn not in self._ck_end_sent):
            self._ck_end_sent.add(csn)
            effects.append(BroadcastControl(ctype=ControlType.CK_END, csn=csn))
        return effects

    # -- §3.4.3: receiving an application message ------------------------------

    def on_app_receive(self, pb: Piggyback, uid: int) -> list[Effect]:
        """Apply the Case 1–4 analysis to a processed application message.

        ``uid`` identifies the message for the ``logSet - {M}`` exclusion.
        The *host* has already (a) delivered the payload to the application
        and (b) appended the message to the current log window — both per
        the paper's "process the message first" rule.
        """
        if self.stat is Status.NORMAL:
            if pb.stat is Status.TENTATIVE:
                if pb.csn == self.csn + 1:
                    # Case 4(b): first news of a new initiation — take a
                    # tentative checkpoint and absorb the sender's knowledge.
                    effects = self._take_tentative()
                    self._merge_tent_set(pb.tent_set)
                    effects += self._maybe_fast_finalize()
                    return effects
                if pb.csn > self.csn + 1:
                    # Case 4(c)/2(d): proven impossible in a failure-free run.
                    return [Anomaly(
                        f"P{self.pid} normal at csn={self.csn} received "
                        f"tentative pb with csn={pb.csn}")]
                # Case 4(a) (pb.csn <= csn): nothing.
                return _NO_EFFECTS
            if pb.csn > self.csn:
                # Peer finalized a checkpoint we never took — impossible.
                return [Anomaly(
                    f"P{self.pid} normal at csn={self.csn} received "
                    f"normal pb with csn={pb.csn}")]
            # Case 1 (both normal, pb.csn <= csn): nothing.
            return _NO_EFFECTS
        # stat_i == tentative; host already logged the message.
        if pb.stat is Status.NORMAL:
            if pb.csn == self.csn:
                # Case 3(b): sender finalized C_{j,csn} ⇒ everyone took
                # the tentative ckpt ⇒ finalize, excluding M itself.
                return self._finalize(exclude_uid=uid,
                                      reason="piggyback.peer_normal")
            if pb.csn > self.csn:
                # Case 3(c): impossible.
                return [Anomaly(
                    f"P{self.pid} tentative at csn={self.csn} received "
                    f"normal pb with csn={pb.csn}")]
            # Case 3(a) (pb.csn < csn): nothing.
            return _NO_EFFECTS
        # Both tentative — Case 2.
        if pb.csn == self.csn:
            # Case 2(b): merge knowledge; finalize if complete.  The
            # completeness check must not be gated on the merge having
            # changed anything: with finalize_on_complete_knowledge off,
            # a 4(b)/2(c) merge can leave tentSet complete *without*
            # finalizing, and the next same-csn receive must finalize.
            self._merge_tent_set(pb.tent_set)
            if len(self.tent_set) == self.n:
                return self._finalize(exclude_uid=None,
                                      reason="piggyback.allset")
            return _NO_EFFECTS
        if pb.csn == self.csn + 1:
            # Case 2(c): sender finalized csn and moved on ⇒ finalize
            # ours (excluding M), then join the new initiation.
            effects = self._finalize(exclude_uid=uid,
                                     reason="piggyback.next_csn")
            effects += self._take_tentative()
            self._merge_tent_set(pb.tent_set)
            effects += self._maybe_fast_finalize()
            return effects
        if pb.csn > self.csn + 1:
            # Case 2(d): impossible.
            return [Anomaly(
                f"P{self.pid} tentative at csn={self.csn} received "
                f"tentative pb with csn={pb.csn}")]
        # pb.csn < csn — Case 2(a): nothing.
        return _NO_EFFECTS

    # -- §3.5.1: the convergence timer ----------------------------------------

    def on_timer(self) -> list[Effect]:
        """Timer for the current tentative checkpoint expired (Figure 4)."""
        if not self.config.control_messages or not self.tentative:
            return []
        effects: list[Effect] = []
        if self.pid == COORDINATOR:
            # P_0 initiates the CK_REQ wave directly.
            if self.csn not in self._ck_req_sent:
                effects += self._forward_ck_req()
        else:
            suppress = (
                self.config.suppress_ck_bgn
                and any(k < self.pid for k in self.tent_set)
                # Escalation: a second expiry for the same csn overrides
                # suppression (liveness belt-and-braces; see module doc).
                and not (self.config.timer_escalation
                         and self._suppressed_csn == self.csn)
            )
            if suppress:
                self._suppressed_csn = self.csn
            elif self.csn not in self._ck_bgn_sent:
                self._ck_bgn_sent.add(self.csn)
                effects.append(SendControl(dst=COORDINATOR,
                                           ctype=ControlType.CK_BGN,
                                           csn=self.csn))
        if self.config.timer_escalation:
            effects.append(ArmTimer(csn=self.csn))
        return effects

    # -- §3.5.1: forwarding CK_REQ ----------------------------------------------

    def _forward_ck_req(self) -> list[Effect]:
        """Procedure forwardCheckpointRequest(P_i, CM) of Figure 4.

        Finds the next process that (to our knowledge) has not yet taken
        the tentative checkpoint; wraps to P_0 when all higher ids have.
        With ``skip_ck_req`` off, plainly forwards to ``(pid+1) mod n``.
        A process that has already *finalized* forwards straight to P_0
        (§3.5.1 Case (2) text).
        """
        csn = self.csn
        if self.stat is Status.NORMAL:
            target = COORDINATOR
        elif not self.config.skip_ck_req:
            target = (self.pid + 1) % self.n
        else:
            target = COORDINATOR
            for k in range(self.pid + 1, self.n):
                if k not in self.tent_set:
                    target = k
                    break
        self._ck_req_sent.add(csn)
        if target == self.pid:
            # Degenerate single-hop wrap (only P_0 can hit this): the wave
            # "returned" instantly — P_0 completes the round itself.
            return self._complete_round_at_p0()
        return [SendControl(dst=target, ctype=ControlType.CK_REQ, csn=csn)]

    def _complete_round_at_p0(self) -> list[Effect]:
        """CK_REQ returned to P_0: broadcast CK_END, finalize if needed."""
        assert self.pid == COORDINATOR
        effects: list[Effect] = []
        if self.csn not in self._ck_end_sent:
            self._ck_end_sent.add(self.csn)
            effects.append(BroadcastControl(ctype=ControlType.CK_END,
                                            csn=self.csn))
        if self.tentative:
            effects += self._finalize(exclude_uid=None,
                                      reason="control.ck_req")
        return effects

    # -- §3.5.1: receiving a control message -------------------------------------

    def on_control(self, cm: ControlMessage, sender: int) -> list[Effect]:
        """Figure 4's ``When P_i receives CM from P_j`` dispatch."""
        if not self.config.control_messages:
            return []
        effects: list[Effect] = []
        if cm.csn == self.csn + 1:
            # A wave for the *next* round reached us before any app message
            # did: finalize the current round (its completion is implied),
            # join the new one, and keep the wave moving.
            if self.tentative:
                effects += self._finalize(exclude_uid=None,
                                          reason="control.next_csn")
            effects += self._take_tentative()
            if cm.ctype is ControlType.CK_REQ or (
                    cm.ctype is ControlType.CK_BGN
                    and self.pid == COORDINATOR):
                effects += self._forward_ck_req()
        elif cm.csn == self.csn:
            if cm.ctype is ControlType.CK_BGN:
                effects += self._on_ck_bgn()
            elif cm.ctype is ControlType.CK_REQ:
                effects += self._on_ck_req()
            else:  # CK_END
                if self.tentative:
                    effects += self._finalize(exclude_uid=None,
                                              reason="control.ck_end")
        elif cm.csn > self.csn + 1:
            effects.append(Anomaly(
                f"P{self.pid} at csn={self.csn} received {cm} "
                f"from P{sender}"))
        # cm.csn < csn: stale wave from a round we already finalized; ignore.
        #
        # Paper rule: "the timer is canceled when ... it receives a CM with
        # sequence number equal to that of its current tentative checkpoint"
        # — a control wave for our round exists, so our CK_BGN is redundant.
        if (self.tentative and cm.csn == self.csn
                and not any(isinstance(e, ArmTimer) for e in effects)):
            effects.append(CancelTimer())
        return effects

    def _on_ck_bgn(self) -> list[Effect]:
        """CK_BGN with our csn arrived (only P_0 should ever receive one)."""
        if self.pid != COORDINATOR:
            return [Anomaly(f"P{self.pid} received CK_BGN (only P_0 may)")]
        if self.tentative:
            if self.csn in self._ck_req_sent:
                return []  # wave already launched for this round
            return self._forward_ck_req()
        # Already finalized: re-announce so the (suppressed) sender learns.
        if self.csn not in self._ck_end_sent:
            self._ck_end_sent.add(self.csn)
            return [BroadcastControl(ctype=ControlType.CK_END, csn=self.csn)]
        return []

    def _on_ck_req(self) -> list[Effect]:
        """CK_REQ with our csn arrived."""
        if self.pid == COORDINATOR:
            # The wave completed its tour.
            if self.csn in self._ck_end_sent:
                return []
            return self._complete_round_at_p0()
        return self._forward_ck_req()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OptimisticStateMachine(P{self.pid}, csn={self.csn}, "
                f"{self.stat.value}, tentSet={sorted(self.tent_set)})")
