"""The paper's contribution: optimistic checkpointing with selective logging.

* :mod:`~repro.core.state_machine` — Figures 3 & 4 as a pure state machine;
* :mod:`~repro.core.host` — the DES binding (flushes, timers, verification
  bookkeeping);
* :mod:`~repro.core.config` — run configuration incl. flush policies;
* :mod:`~repro.core.types` — ``Status`` / ``Piggyback`` / checkpoints.
"""

from .config import (
    FlushAtFinalize,
    FlushImmediately,
    FlushOpportunistic,
    FlushPolicy,
    FlushUniformDelay,
    OptimisticConfig,
)
from .effects import (
    Anomaly,
    ArmTimer,
    BroadcastControl,
    CancelTimer,
    Effect,
    Finalize,
    SendControl,
    TakeTentative,
)
from .host import OptimisticProcess, OptimisticRuntime, ProtocolAnomalyError
from .invariants import InvariantMonitor, InvariantViolation
from .state_machine import COORDINATOR, MachineConfig, OptimisticStateMachine
from .types import (
    ControlMessage,
    ControlType,
    FinalizedCheckpoint,
    LogEntry,
    Piggyback,
    Status,
    TentativeCheckpoint,
)

__all__ = [
    "Anomaly",
    "ArmTimer",
    "BroadcastControl",
    "COORDINATOR",
    "CancelTimer",
    "ControlMessage",
    "ControlType",
    "Effect",
    "Finalize",
    "FinalizedCheckpoint",
    "FlushAtFinalize",
    "FlushImmediately",
    "FlushOpportunistic",
    "FlushPolicy",
    "FlushUniformDelay",
    "InvariantMonitor",
    "InvariantViolation",
    "LogEntry",
    "MachineConfig",
    "OptimisticConfig",
    "OptimisticProcess",
    "OptimisticRuntime",
    "OptimisticStateMachine",
    "Piggyback",
    "ProtocolAnomalyError",
    "SendControl",
    "Status",
    "TakeTentative",
    "TentativeCheckpoint",
]
