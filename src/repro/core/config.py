"""Configuration for the optimistic-checkpointing protocol host.

Separates three concerns the paper keeps distinct:

* *when* checkpoints are initiated (``checkpoint_interval`` + phasing —
  the paper's "regularly scheduled basic checkpoints");
* *how* the protocol converges (``timeout`` + the nested
  :class:`~repro.core.state_machine.MachineConfig` switches);
* *when* the tentative state is flushed to stable storage — the
  :class:`FlushPolicy` hierarchy, which is the heart of the paper's
  contention-avoidance claim ("processes are able to choose their
  convenient time for writing the tentative checkpoints ... to stable
  storage").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .state_machine import MachineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import OptimisticProcess
    from .types import TentativeCheckpoint


class FlushPolicy:
    """Decides when ``CT_{i,k}`` moves from local memory to stable storage.

    The contract: ``on_tentative`` is called right after the tentative
    checkpoint is captured; the policy may flush immediately, schedule a
    flush, or do nothing (finalization always flushes whatever remains —
    the paper guarantees the flush happens *no later than* ``CFE``).
    ``host.flush_tentative(ckpt)`` is idempotent, so racing a scheduled
    flush against finalization is harmless.
    """

    name = "abstract"

    def on_tentative(self, host: "OptimisticProcess",
                     ckpt: "TentativeCheckpoint") -> None:
        """Policy hook: decide when (if ever before CFE) to flush ``ckpt``."""
        raise NotImplementedError


class FlushAtFinalize(FlushPolicy):
    """Maximum optimism: hold state locally until finalization."""

    name = "at-finalize"

    def on_tentative(self, host: "OptimisticProcess",
                     ckpt: "TentativeCheckpoint") -> None:
        pass  # finalization flushes


class FlushImmediately(FlushPolicy):
    """Flush at capture time — mimics synchronous protocols' write timing.

    Used as an ablation: with every process initiating on the same phase,
    this re-creates exactly the storage-contention spike the paper argues
    against, isolating the value of deferred flushing.
    """

    name = "immediate"

    def on_tentative(self, host: "OptimisticProcess",
                     ckpt: "TentativeCheckpoint") -> None:
        host.flush_tentative(ckpt)


@dataclass
class FlushUniformDelay(FlushPolicy):
    """Flush at a uniformly random point within ``max_delay`` of capture.

    The simplest "convenient time" realization: writes from different
    processes de-correlate in time even when captures align.
    """

    max_delay: float = 5.0
    name = "uniform-delay"

    def on_tentative(self, host: "OptimisticProcess",
                     ckpt: "TentativeCheckpoint") -> None:
        rng = host.sim.rng.stream(f"flush.{host.pid}")
        delay = float(rng.uniform(0.0, self.max_delay))
        # host.set_timeout (not sim.schedule) so a crash or rollback of the
        # host cancels the pending flush with it.
        host.set_timeout(delay, lambda: host.flush_tentative(ckpt))


@dataclass
class FlushOpportunistic(FlushPolicy):
    """Flush when the file server looks idle (paper §1: save "if there is
    no contention for stable storage while saving").

    Polls the server's outstanding-request count every ``poll_interval``;
    flushes once it is ≤ ``idle_threshold`` or after ``max_wait`` (whichever
    first).  This models a client observing NFS queue depth, a realistic
    stand-in for the paper's informal "at their own convenience".
    """

    poll_interval: float = 0.5
    idle_threshold: int = 0
    max_wait: float = 30.0
    name = "opportunistic"

    def on_tentative(self, host: "OptimisticProcess",
                     ckpt: "TentativeCheckpoint") -> None:
        deadline = host.sim.now + self.max_wait
        # First look is de-phased per process so captures that align do not
        # all poll (and then write) at the same instant.
        rng = host.sim.rng.stream(f"flush.{host.pid}")
        first = float(rng.uniform(0.0, self.poll_interval))

        def poll() -> None:
            if ckpt.flushed:
                return
            idle = host.runtime.storage.outstanding() <= self.idle_threshold
            if idle or host.sim.now >= deadline:
                host.flush_tentative(ckpt)
            else:
                host.set_timeout(self.poll_interval, poll)

        # host.set_timeout so crash/rollback kills the poll chain too.
        host.set_timeout(first, poll)


@dataclass
class OptimisticConfig:
    """Full configuration for a run of the paper's protocol."""

    #: Period of scheduled ("basic") checkpoint initiations; ``None`` means
    #: no periodic initiation (scenarios drive initiation manually).
    checkpoint_interval: float | None = 50.0
    #: Phase of each process's first initiation: "aligned" (all at one
    #: instant — worst case for contention), "staggered" (evenly spread
    #: over one interval) or "jittered" (uniform random within an interval).
    initiation_phase: str = "jittered"
    #: Restart the initiation schedule whenever a tentative checkpoint is
    #: taken for *any* reason (own initiation or joining a peer's round).
    #: This realizes the paper's §1 guarantee — "no process takes more than
    #: one checkpoint in any time interval of t seconds" — because a joined
    #: round satisfies the scheduled-checkpoint requirement.  With ``False``
    #: every process initiates on its own fixed phase regardless, and
    #: staggered initiators cascade into roughly one global round per
    #: initiator per interval.
    reset_schedule_on_checkpoint: bool = True
    #: Convergence timer (§3.5.1) — time a tentative checkpoint may remain
    #: unfinalized before control messages are triggered.
    timeout: float = 20.0
    #: Bytes of process state captured by a tentative checkpoint; callable
    #: receives the pid (lets experiments model heterogeneous processes).
    state_bytes: int | Callable[[int], int] = 1_000_000
    #: When tentative state is flushed (see :class:`FlushPolicy`).
    flush_policy: FlushPolicy = field(default_factory=FlushAtFinalize)
    #: State-machine switches (control plane + optimizations).
    machine: MachineConfig = field(default_factory=MachineConfig)
    #: Ablation: log every message from the moment a checkpoint interval
    #: starts rather than only during the tentative window.  Inflates log
    #: bytes; used by E12 to quantify the value of *selective* logging.
    log_all_messages: bool = False
    #: Incremental checkpointing (production extension, not in the paper):
    #: every k-th checkpoint captures the full state; the others capture a
    #: delta of ``delta_fraction`` of it.  Cuts write volume dramatically,
    #: but recovery needs the delta *chain* back to the last full capture,
    #: so garbage collection keeps that chain alive (chain-aware GC).
    #: ``None`` = every checkpoint is full (the paper's model).
    incremental_every: int | None = None
    #: Fraction of the state a delta checkpoint writes.
    delta_fraction: float = 0.1
    #: Raise on protocol anomalies (messages the paper proves impossible).
    #: Failure-injection experiments set this False and count them instead.
    strict: bool = True

    def state_bytes_for(self, pid: int) -> int:
        """Resolve the (possibly per-pid) checkpoint state size."""
        if callable(self.state_bytes):
            return int(self.state_bytes(pid))
        return int(self.state_bytes)

    def is_full_checkpoint(self, csn: int) -> bool:
        """Whether checkpoint ``csn`` captures the full state.

        With ``incremental_every = k``: csns 1, k+1, 2k+1, ... are full.
        """
        if self.incremental_every is None:
            return True
        return (csn - 1) % self.incremental_every == 0

    def capture_bytes_for(self, pid: int, csn: int) -> int:
        """Bytes the tentative checkpoint ``csn`` actually captures."""
        full = self.state_bytes_for(pid)
        if self.is_full_checkpoint(csn):
            return full
        return int(full * self.delta_fraction)

    def validate(self, n: int) -> None:
        """Fail fast on nonsensical settings."""
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive or None")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.initiation_phase not in ("aligned", "staggered", "jittered"):
            raise ValueError(
                f"unknown initiation_phase {self.initiation_phase!r}")
        if self.incremental_every is not None and self.incremental_every < 1:
            raise ValueError("incremental_every must be >= 1 or None")
        if not (0.0 < self.delta_fraction <= 1.0):
            raise ValueError(
                f"delta_fraction must be in (0, 1], got {self.delta_fraction}")
        for pid in range(n):
            if self.state_bytes_for(pid) < 0:
                raise ValueError(f"negative state_bytes for pid {pid}")
