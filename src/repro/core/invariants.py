"""Live protocol-invariant monitoring.

A :class:`InvariantMonitor` subscribes to the simulation trace and checks,
*as events happen*, the state-transition rules the paper's protocol must
obey:

1. per process, tentative checkpoints carry csn exactly one above the last
   finalized checkpoint (sequence discipline, §3.4.1);
2. a finalization matches the currently-open tentative checkpoint — never
   a skipped or repeated csn;
3. no new tentative checkpoint opens while one is unfinalized (the paper's
   "not allowed to initiate ... until it finalizes");
4. rollbacks may only rewind to a previously-finalized csn.

Violations are collected (and optionally raised immediately), with the
offending trace record attached — a debugging tool for protocol hacking
that the test suite also runs over full simulations to guard the host's
bookkeeping independently of the consistency verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..des.trace import TraceRecord, TraceRecorder


class InvariantViolation(AssertionError):
    """A protocol state-transition rule was broken."""


@dataclass
class _ProcState:
    last_finalized: int = 0
    open_tentative: int | None = None
    finalized_set: set[int] = field(default_factory=lambda: {0})


class InvariantMonitor:
    """Trace subscriber enforcing the checkpoint state-machine rules."""

    def __init__(self, trace: TraceRecorder, *,
                 raise_immediately: bool = True) -> None:
        self.raise_immediately = raise_immediately
        self.violations: list[str] = []
        self._procs: dict[int, _ProcState] = {}
        trace.subscribe(self._on_record)

    def _state(self, pid: int) -> _ProcState:
        st = self._procs.get(pid)
        if st is None:
            st = _ProcState()
            self._procs[pid] = st
        return st

    def _fail(self, message: str, rec: TraceRecord) -> None:
        full = f"{message} (at t={rec.time:.6g}, record={rec.kind})"
        self.violations.append(full)
        if self.raise_immediately:
            raise InvariantViolation(full)

    # -- rules -----------------------------------------------------------------

    def _on_record(self, rec: TraceRecord) -> None:
        if rec.kind == "ckpt.tentative":
            self._on_tentative(rec)
        elif rec.kind == "ckpt.finalize":
            self._on_finalize(rec)
        elif rec.kind == "ckpt.rollback":
            self._on_rollback(rec)

    def _on_tentative(self, rec: TraceRecord) -> None:
        st = self._state(rec.process)
        csn = rec.data["csn"]
        # Baseline protocols reuse the same trace kinds but have different
        # numbering (CIC indexes can jump); monitor only dense protocols.
        if rec.data.get("forced") is not None:
            return
        if st.open_tentative is not None:
            self._fail(
                f"P{rec.process} took CT_{csn} while CT_"
                f"{st.open_tentative} is still unfinalized", rec)
        if csn != st.last_finalized + 1:
            self._fail(
                f"P{rec.process} took CT_{csn} but last finalized csn is "
                f"{st.last_finalized} (expected {st.last_finalized + 1})",
                rec)
        st.open_tentative = csn

    def _on_finalize(self, rec: TraceRecord) -> None:
        st = self._state(rec.process)
        csn = rec.data["csn"]
        if rec.data.get("reason") == "initial":
            st.finalized_set.add(csn)
            return
        if rec.data.get("reason", "").startswith(("cl.", "kt.", "stag.")):
            return  # baseline rounds have their own (tested) disciplines
        if st.open_tentative != csn:
            self._fail(
                f"P{rec.process} finalized C_{csn} but open tentative is "
                f"{st.open_tentative}", rec)
        st.open_tentative = None
        st.last_finalized = csn
        st.finalized_set.add(csn)

    def _on_rollback(self, rec: TraceRecord) -> None:
        st = self._state(rec.process)
        csn = rec.data["csn"]
        if csn not in st.finalized_set:
            self._fail(
                f"P{rec.process} rolled back to never-finalized csn {csn}",
                rec)
        st.open_tentative = None
        st.last_finalized = csn
        st.finalized_set = {c for c in st.finalized_set if c <= csn}

    # -- reporting -----------------------------------------------------------------

    def assert_clean(self) -> None:
        """Raise if any violation was recorded (for non-immediate mode)."""
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} violations; first: "
                f"{self.violations[0]}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InvariantMonitor(violations={len(self.violations)})"
