"""DES host for the optimistic checkpointing protocol.

:class:`OptimisticProcess` binds one :class:`OptimisticStateMachine` to the
simulation substrates: it executes the machine's effects against the network
(control messages), stable storage (flushes), local store (tentative state +
log buffering) and trace.  :class:`OptimisticRuntime` is the per-run context
shared by all hosts (network, storage, config) plus the verification surface
experiments consume.

Responsibilities kept *out* of the state machine on purpose:

* message-log byte accounting (``logSet`` contents — §3.1's selective log);
* the send/receive *windows* used for consistency verification — for each
  finalized ``C_{i,k}`` the host records exactly which application-message
  uids the checkpoint captures (everything between ``CFE_{i,k-1}`` and
  ``CFE_{i,k}``, minus the paper's excluded trigger message);
* periodic initiation scheduling ("basic checkpoints at scheduled times");
* tentative-state flush timing (:class:`~repro.core.config.FlushPolicy`).
"""

from __future__ import annotations

from typing import Any

from ..causality.consistency import (
    CheckpointRecord,
    ConsistencyVerifier,
    Orphan,
)
from ..des.engine import Simulator
from ..des.process import SimProcess
from ..net.message import Message
from ..net.network import Network
from ..storage.local_store import LocalStore
from ..storage.stable_storage import StableStorage
from .config import OptimisticConfig
from .effects import (
    Anomaly,
    ArmTimer,
    BroadcastControl,
    CancelTimer,
    Effect,
    Finalize,
    SendControl,
    TakeTentative,
)
from .state_machine import OptimisticStateMachine
from .types import (
    ControlMessage,
    FinalizedCheckpoint,
    LogEntry,
    Status,
    TentativeCheckpoint,
    piggyback_bytes,
)


class ProtocolAnomalyError(RuntimeError):
    """Raised in strict mode when a proven-impossible message arrives."""


# Hoisted enum members: the per-message paths test these constantly and a
# module global loads cheaper than Status.<member>.
_NORMAL = Status.NORMAL
_TENTATIVE = Status.TENTATIVE


def _receive_case(mstat: Status, pstat: Status, pcsn: int, mcsn: int) -> str:
    """§3.4.3 case label for an app receive, from the receiver's view.

    Mirrors the dispatch order of
    :meth:`OptimisticStateMachine.on_app_receive` (and the inlined fast
    paths in :meth:`OptimisticProcess.on_message`) without mutating any
    state: ``1`` normal/normal, ``2a``–``2d`` tentative/tentative,
    ``3a``–``3c`` tentative/normal, ``4a``–``4c`` normal/tentative.
    ``1x`` is the normal/normal future-csn anomaly.
    """
    if mstat is _NORMAL:
        if pstat is _TENTATIVE:
            if pcsn == mcsn + 1:
                return "4b"
            if pcsn > mcsn + 1:
                return "4c"
            return "4a"
        return "1" if pcsn <= mcsn else "1x"
    if pstat is _NORMAL:
        if pcsn == mcsn:
            return "3b"
        if pcsn > mcsn:
            return "3c"
        return "3a"
    if pcsn == mcsn:
        return "2b"
    if pcsn == mcsn + 1:
        return "2c"
    if pcsn > mcsn + 1:
        return "2d"
    return "2a"


class OptimisticRuntime:
    """Shared context for one simulated run of the optimistic protocol."""

    def __init__(self, sim: Simulator, network: Network,
                 storage: StableStorage, config: OptimisticConfig,
                 horizon: float | None = None) -> None:
        config.validate(network.n)
        self.sim = sim
        self.network = network
        self.storage = storage
        self.config = config
        #: Simulated time after which no *new* checkpoint rounds or app work
        #: start (in-flight rounds still converge, so the event queue drains).
        self.horizon = horizon
        self.hosts: dict[int, "OptimisticProcess"] = {}

    @property
    def n(self) -> int:
        return self.network.n

    def build(self, apps: dict[int, Any] | None = None
              ) -> list["OptimisticProcess"]:
        """Create one host per topology node (optionally with app behaviours).

        ``apps`` maps pid -> an object with ``on_start(host)`` and
        ``on_message(host, msg)`` (see :mod:`repro.workload.app`).
        """
        hosts = []
        for pid in range(self.n):
            app = apps.get(pid) if apps else None
            host = OptimisticProcess(pid, self.sim, self, app=app)
            self.network.add_process(host)
            self.hosts[pid] = host
            hosts.append(host)
        return hosts

    def start(self) -> None:
        """Start every process (emits initial checkpoints, arms timers)."""
        self.network.start_all()

    # -- verification surface -------------------------------------------------

    def finalized_seqs(self) -> list[int]:
        """Sequence numbers finalized by *every* process (complete S_k)."""
        if not self.hosts:
            return []
        common: set[int] | None = None
        for host in self.hosts.values():
            seqs = set(host.finalized)
            common = seqs if common is None else (common & seqs)
        return sorted(common or ())

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """Cumulative :class:`CheckpointRecord` per complete S_k."""
        out: dict[int, dict[int, CheckpointRecord]] = {}
        per_host = {pid: host.checkpoint_records()
                    for pid, host in self.hosts.items()}
        for seq in self.finalized_seqs():
            out[seq] = {pid: per_host[pid][seq] for pid in per_host}
        return out

    def verify_consistency(self) -> dict[int, list[Orphan]]:
        """Run the independent trace-based verifier over every complete S_k."""
        verifier = ConsistencyVerifier(self.sim.trace)
        return verifier.verify_all(self.global_records())

    def assert_consistent(self) -> int:
        """Raise on any orphan; returns the number of cuts checked."""
        verifier = ConsistencyVerifier(self.sim.trace)
        return verifier.assert_consistent(self.global_records())

    def anomalies(self) -> list[str]:
        """All protocol anomalies observed across hosts."""
        out: list[str] = []
        for pid in sorted(self.hosts):
            out.extend(self.hosts[pid].anomalies)
        return out

    def control_message_count(self, ctype: str | None = None) -> int:
        """Control messages sent (optionally one of CK_BGN/CK_REQ/CK_END)."""
        total = 0
        for host in self.hosts.values():
            if ctype is None:
                total += sum(host.ctl_sent.values())
            else:
                total += host.ctl_sent.get(ctype, 0)
        return total

    # -- metric surface (mirrors BaselineRuntime where meaningful) ---------------

    def total_checkpoints(self) -> int:
        """Tentative checkpoints taken across all processes (excl. initial)."""
        return sum(len(h.tentatives) for h in self.hosts.values())

    def total_blocked_time(self) -> float:
        """The optimistic protocol never blocks the application."""
        return 0.0

    def response_delays(self) -> list[float]:
        """Pre-processing delays per app message — always zero here (the
        paper's no-checkpoint-before-processing property)."""
        delivered = self.network.delivered_by_kind.get("app", 0)
        return [0.0] * delivered

    def total_log_bytes(self) -> int:
        """Bytes of selective message logs across all finalized checkpoints."""
        return sum(fc.log_bytes for h in self.hosts.values()
                   for fc in h.finalized.values())

    def total_logged_messages(self) -> int:
        """Messages captured in selective logs across all finalized checkpoints."""
        return sum(len(fc.log_entries) for h in self.hosts.values()
                   for fc in h.finalized.values())

    def convergence_latencies(self) -> dict[int, float]:
        """Per complete S_k: time from the first tentative checkpoint with
        sequence k to the last finalization of k (the round's span)."""
        out: dict[int, float] = {}
        for seq in self.finalized_seqs():
            if seq == 0:
                continue
            starts, ends = [], []
            for host in self.hosts.values():
                fc = host.finalized[seq]
                starts.append(fc.tentative.taken_at)
                ends.append(fc.finalized_at)
            out[seq] = max(ends) - min(starts)
        return out

    def max_local_buffer_bytes(self) -> int:
        """High-water mark of tentative-state + log bytes held in local
        memory — the optimism's memory cost."""
        return max((h.local.max_bytes for h in self.hosts.values()),
                   default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OptimisticRuntime(n={self.n}, "
                f"finalized_seqs={self.finalized_seqs()})")


class OptimisticProcess(SimProcess):
    """One process running the paper's protocol (state machine + substrates)."""

    def __init__(self, pid: int, sim: Simulator, runtime: OptimisticRuntime,
                 app: Any = None) -> None:
        super().__init__(pid, sim)
        self.runtime = runtime
        self.config = runtime.config
        self.machine = OptimisticStateMachine(pid, runtime.n,
                                              config=runtime.config.machine)
        self.app = app
        self.local = LocalStore(pid)
        # Checkpoint objects ---------------------------------------------------
        self.tentatives: dict[int, TentativeCheckpoint] = {}
        self.finalized: dict[int, FinalizedCheckpoint] = {}
        self.current_tentative: TentativeCheckpoint | None = None
        # Selective message log + verification windows -------------------------
        self._log_entries: list[LogEntry] = []
        #: Running byte total of ``_log_entries`` — maintained incrementally
        #: (summing the window per append is O(window²) over a round).
        self._log_bytes = 0
        self._window_sent: list[int] = []
        self._window_recv: list[int] = []
        # Bound appends for the per-message window bookkeeping.  Valid for
        # the host's lifetime because the window lists are cleared in place
        # (never replaced) by _do_finalize / rollback_to.
        self._ws_append = self._window_sent.append
        self._wr_append = self._window_recv.append
        #: Cached LocalStore item for the "log" label — the log re-put per
        #: logged message mutates it in place (LocalStore.put semantics,
        #: inlined); reset wherever the item leaves the store.
        self._log_item = None
        # Hot-path constants (per-run invariants, hoisted out of app_send /
        # on_message): the piggyback wire cost, the logging-mode switch and
        # the bound network send (one attribute chain less per message).
        self._pb_bytes = piggyback_bytes(runtime.n)
        self._log_all = runtime.config.log_all_messages
        self._net = runtime.network
        self._net_send = runtime.network.send
        # Interned (piggyback, meta-dict) pair: between protocol transitions
        # every outgoing app message carries the same {"pb": pb}, so the
        # dict is built once per transition — unless fault injection is in
        # play (network._track_deliveries), where gates stamp per-message
        # drop causes into meta and sharing would cross-contaminate.
        self._pb_meta: tuple[Any, Any] = (None, None)
        # App delivery callback, resolved once: None when the behaviour
        # inherits the base no-op (marked ``app_noop``) so per-delivery
        # dispatch costs nothing for send-only workloads.
        on_msg = getattr(app, "on_message", None)
        if on_msg is not None and getattr(on_msg, "app_noop", False):
            on_msg = None
        self._app_on_message = on_msg
        self._flush_submitted: set[int] = set()
        #: Checkpoint generations still held on stable storage (GC state).
        self._held_gens: set[int] = set()
        # Timers ----------------------------------------------------------------
        self._conv_timer = sim.timer(self._on_conv_timer)
        self._init_timer = sim.timer(self._on_init_timer)
        # Diagnostics ------------------------------------------------------------
        self.anomalies: list[str] = []
        self.ctl_sent: dict[str, int] = {}
        self.finalize_reasons: dict[str, int] = {}
        #: §3.4.3 receive-case histogram, populated only when a harness
        #: (the fuzzer's coverage map) switches it on by assigning a dict;
        #: ``None`` keeps the app-receive hot path to a single attribute
        #: load + identity check.
        self.case_counts: dict[str, int] | None = None
        #: Simulated application state: a fold over processed message uids
        #: (see :func:`repro.core.types.fold_digest`) — makes recovery's
        #: restore-and-replay semantics checkable.
        self.state_digest = 0

    # -- lifecycle -------------------------------------------------------------

    def on_start(self) -> None:
        # The paper's initial checkpoint C_{i,0} (sequence number 0); it is
        # not written to the shared file server so t=0 does not register as
        # artificial contention in any protocol's statistics.
        initial_ct = TentativeCheckpoint(pid=self.pid, csn=0,
                                         taken_at=self.sim.now,
                                         state_bytes=0, flushed_at=self.sim.now)
        self.finalized[0] = FinalizedCheckpoint(
            pid=self.pid, csn=0, tentative=initial_ct,
            finalized_at=self.sim.now, reason="initial")
        if self.app is not None:
            self.app.on_start(self)
        self._arm_first_initiation()

    def _arm_first_initiation(self) -> None:
        interval = self.config.checkpoint_interval
        if interval is None:
            return
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + interval > horizon:
            return
        phase = self.config.initiation_phase
        if phase == "aligned":
            offset = 0.0
        elif phase == "staggered":
            offset = interval * self.pid / self.runtime.n
        else:  # jittered
            rng = self.sim.rng.stream(f"init.{self.pid}")
            offset = float(rng.uniform(0.0, interval))
        self._init_timer.start(interval + offset)

    def _on_init_timer(self) -> None:
        """Scheduled basic-checkpoint initiation (§3.4.1)."""
        if self.halted:
            return
        self._execute(self.machine.initiate())
        interval = self.config.checkpoint_interval
        horizon = self.runtime.horizon
        if interval is not None and (
                horizon is None or self.sim.now + interval <= horizon):
            self._init_timer.start(interval)

    def initiate_checkpoint(self) -> bool:
        """Manually initiate a consistent global checkpoint (scenarios use
        this).  Returns whether a tentative checkpoint was actually taken."""
        before = self.machine.csn
        self._execute(self.machine.initiate())
        return self.machine.csn == before + 1

    # -- application-facing API ---------------------------------------------------

    def app_send(self, dst: int, payload: Any = None,
                 size: int = 0) -> Message:
        """Send an application message with the protocol piggyback (§3.4.2)."""
        machine = self.machine
        pb = machine._pb
        if pb is None:
            pb = machine.piggyback()
        if self._net._track_deliveries:
            meta = {"pb": pb}  # faults in play: meta must be per-message
        else:
            cached = self._pb_meta
            if cached[0] is pb:
                meta = cached[1]
            else:
                meta = {"pb": pb}
                self._pb_meta = (pb, meta)
        msg = self._net_send(self.pid, dst, payload, size, "app",
                             meta, self._pb_bytes)
        self._ws_append(msg.uid)
        if machine.stat is _TENTATIVE or self._log_all:
            now = self.sim.now
            nbytes = size + self._pb_bytes
            self._log_entries.append(LogEntry(
                uid=msg.uid, nbytes=nbytes, direction="sent", time=now))
            self._log_bytes = lb = self._log_bytes + nbytes
            # Re-buffer the grown log: LocalStore.put's replacement
            # accounting inlined against the cached "log" item (keep in
            # sync with LocalStore.put and the twin block in on_message).
            item = self._log_item
            if item is None:
                self._log_item = self.local.put("log", lb, now)
            else:
                local = self.local
                local._bytes += lb - item.nbytes
                item.nbytes = lb
                item.stored_at = now
                local.total_buffered += lb
                if local._bytes > local.max_bytes:
                    local.max_bytes = local._bytes
        return msg

    # -- message dispatch -----------------------------------------------------------

    def on_message(self, msg: Message) -> None:
        kind = msg.kind
        if kind == "app":
            # Paper §3.4.3: "it processes the message first and then takes
            # the following actions" — the application sees the message
            # before any checkpointing action (no forced checkpoint delays
            # the response).
            app_on_message = self._app_on_message
            if app_on_message is not None:
                app_on_message(self, msg)
            uid = msg.uid
            # fold_digest inlined (keep in sync with types.fold_digest) —
            # one call per delivered app message is measurable.
            self.state_digest = ((self.state_digest * 1_000_003 + uid
                                  + 0x9E3779B9) % (1 << 61))
            self._wr_append(uid)
            machine = self.machine
            mstat = machine.stat
            if mstat is _TENTATIVE or self._log_all:
                now = self.sim.now
                nbytes = msg.size + msg.overhead_bytes
                self._log_entries.append(LogEntry(
                    uid=uid, nbytes=nbytes, direction="recv", time=now))
                self._log_bytes = lb = self._log_bytes + nbytes
                # Twin of the app_send log re-buffer block; keep all three
                # (here, app_send, LocalStore.put) in sync.
                item = self._log_item
                if item is None:
                    self._log_item = self.local.put("log", lb, now)
                else:
                    local = self.local
                    local._bytes += lb - item.nbytes
                    item.nbytes = lb
                    item.stored_at = now
                    local.total_buffered += lb
                    if local._bytes > local.max_bytes:
                        local.max_bytes = local._bytes
            pb = msg.meta["pb"]
            pcsn = pb.csn
            mcsn = machine.csn
            cc = self.case_counts
            if cc is not None:
                label = _receive_case(mstat, pb.stat, pcsn, mcsn)
                cc[label] = cc.get(label, 0) + 1
            # §3.4.3's no-effect and merge-only cases inlined — the
            # overwhelming majority of receives both outside and inside
            # checkpoint rounds; every state-changing case (take, finalize,
            # anomaly) still goes through the state machine.  Keep in sync
            # with OptimisticStateMachine.on_app_receive.
            if mstat is _NORMAL:
                if pcsn <= mcsn:
                    return  # Cases 1 / 4(a): stale or current ⇒ nothing.
            elif pb.stat is _TENTATIVE and pcsn == mcsn:
                # Case 2(b): merge knowledge (interned pb invalidated only
                # on growth); finalize — via the state machine, the merge
                # is idempotent — only once tentSet is complete.
                ts = machine.tent_set
                before = len(ts)
                ts |= pb.tent_set
                if len(ts) != before:
                    machine._pb = None
                if len(ts) != machine.n:
                    return
            elif pcsn < mcsn:
                return  # Cases 2(a) / 3(a): stale piggyback ⇒ nothing.
            effects = machine.on_app_receive(pb, uid)
            if effects:
                self._execute(effects)
            return
        if kind == "ctl":
            cm: ControlMessage = msg.payload
            tr = self.sim.trace
            if tr.enabled:
                tr.record(self.sim.now, "ctl.recv", self.pid,
                          ctype=cm.ctype.value, csn=cm.csn, src=msg.src)
            self._execute(self.machine.on_control(cm, msg.src))
            return
        raise ValueError(f"unexpected message kind {kind!r}")

    # -- effect execution --------------------------------------------------------------

    def _execute(self, effects: list[Effect]) -> None:
        for eff in effects:
            if isinstance(eff, TakeTentative):
                self._do_take_tentative(eff.csn)
            elif isinstance(eff, Finalize):
                self._do_finalize(eff)
            elif isinstance(eff, SendControl):
                self._send_control(eff.dst, ControlMessage(eff.ctype, eff.csn))
            elif isinstance(eff, BroadcastControl):
                cm = ControlMessage(eff.ctype, eff.csn)
                for dst in range(self.runtime.n):
                    if dst != self.pid:
                        self._send_control(dst, cm)
            elif isinstance(eff, ArmTimer):
                self._conv_timer.start(self.config.timeout)
            elif isinstance(eff, CancelTimer):
                self._conv_timer.cancel()
            elif isinstance(eff, Anomaly):
                self.anomalies.append(eff.description)
                self.trace("ckpt.anomaly", description=eff.description)
                if self.config.strict:
                    raise ProtocolAnomalyError(eff.description)
            else:  # pragma: no cover - future-proofing
                raise TypeError(f"unknown effect {eff!r}")

    def _send_control(self, dst: int, cm: ControlMessage) -> None:
        ctype = cm.ctype.value
        self.ctl_sent[ctype] = self.ctl_sent.get(ctype, 0) + 1
        tr = self.sim.trace
        if tr.enabled:
            tr.record(self.sim.now, "ctl.send", self.pid, ctype=ctype,
                      csn=cm.csn, dst=dst)
        self.network.send(self.pid, dst, cm, kind="ctl",
                          overhead_bytes=ControlMessage.ENCODED_BYTES)

    def _on_conv_timer(self) -> None:
        if self.halted:
            return
        self._execute(self.machine.on_timer())

    # -- checkpoint actions -------------------------------------------------------------

    def _do_take_tentative(self, csn: int) -> None:
        state_bytes = self.config.capture_bytes_for(self.pid, csn)
        ckpt = TentativeCheckpoint(pid=self.pid, csn=csn,
                                   taken_at=self.sim.now,
                                   state_bytes=state_bytes,
                                   digest=self.state_digest,
                                   full=self.config.is_full_checkpoint(csn))
        self.tentatives[csn] = ckpt
        self.current_tentative = ckpt
        if not self._log_all:
            self._log_entries = []
            self._log_bytes = 0
        self.local.put("ct", state_bytes, self.sim.now)
        self.trace("ckpt.tentative", csn=csn, bytes=state_bytes)
        # A checkpoint taken for any reason satisfies the scheduled
        # requirement (paper §1: at most one checkpoint per interval).
        if (self.config.reset_schedule_on_checkpoint
                and self.config.checkpoint_interval is not None):
            interval = self.config.checkpoint_interval
            horizon = self.runtime.horizon
            if horizon is None or self.sim.now + interval <= horizon:
                self._init_timer.start(interval)
            else:
                self._init_timer.cancel()
        self.config.flush_policy.on_tentative(self, ckpt)

    def flush_tentative(self, ckpt: TentativeCheckpoint) -> None:
        """Write ``CT_{i,k}`` to stable storage (idempotent; §3.1: "usually
        saved in memory first and then flushed to stable storage")."""
        if ckpt.csn in self._flush_submitted:
            return
        self._flush_submitted.add(ckpt.csn)
        self.runtime.storage.space.retain(self.pid, f"ct:{ckpt.csn}",
                                          ckpt.state_bytes, self.sim.now)
        self.trace("ckpt.flush.ct", csn=ckpt.csn, bytes=ckpt.state_bytes)

        def done(req) -> None:
            ckpt.flushed_at = req.finish
            self.local.discard("ct")

        self.runtime.storage.write(self.pid, ckpt.state_bytes,
                                   label=f"ct:{self.pid}:{ckpt.csn}",
                                   callback=done)

    def _do_finalize(self, eff: Finalize) -> None:
        ckpt = self.current_tentative
        assert ckpt is not None and ckpt.csn == eff.csn, (
            f"P{self.pid} finalizing csn={eff.csn} but current tentative "
            f"is {ckpt}")
        exclude = eff.exclude_uid
        entries = [e for e in self._log_entries if e.uid != exclude]
        excluded_entries = [e for e in self._log_entries if e.uid == exclude]
        new_sent = frozenset(self._window_sent)
        new_recv = frozenset(self._window_recv)
        if exclude is not None:
            new_recv = new_recv - {exclude}
        fc = FinalizedCheckpoint(
            pid=self.pid, csn=eff.csn, tentative=ckpt,
            finalized_at=self.sim.now, log_entries=entries,
            new_sent_uids=new_sent, new_recv_uids=new_recv,
            reason=eff.reason)
        self.finalized[eff.csn] = fc
        self.finalize_reasons[eff.reason] = (
            self.finalize_reasons.get(eff.reason, 0) + 1)
        # Reset the verification windows; the excluded message belongs to the
        # *next* checkpoint's window (it is part of the state at CT_{i,k+1}).
        self._window_sent.clear()
        self._window_recv.clear()
        if exclude is not None:
            self._window_recv.append(exclude)
        # Selective logging resets at the next CT; pessimistic (ablation)
        # logging keeps the excluded entry alive for the next log.
        self._log_entries = excluded_entries if self._log_all else []
        self._log_bytes = sum(e.nbytes for e in self._log_entries)
        # Flush: the message log always goes to stable storage now; the
        # tentative state is bundled in unless a FlushPolicy already sent it.
        space = self.runtime.storage.space
        nbytes = fc.log_bytes
        if ckpt.csn not in self._flush_submitted:
            self._flush_submitted.add(ckpt.csn)
            nbytes += ckpt.state_bytes
            space.retain(self.pid, f"ct:{ckpt.csn}", ckpt.state_bytes,
                         self.sim.now)

            def done_ct(req) -> None:
                ckpt.flushed_at = req.finish
                self.local.discard("ct")

            callback = done_ct
        else:
            callback = None
        space.retain(self.pid, f"log:{ckpt.csn}", fc.log_bytes, self.sim.now)
        # Garbage collection (paper §1): finalizing C_{i,k} certifies that
        # S_{k-1} is committed system-wide, so generations that can never
        # again be a recovery line are deleted.  With full checkpoints the
        # floor is simply k-1 (delete k-2 and older); with incremental
        # checkpointing, restoring S_{k-1} needs the delta chain back to
        # the last FULL capture at or before k-1, so the chain stays.
        self._held_gens.add(eff.csn)
        floor = eff.csn - 1
        while floor >= 1 and not self.config.is_full_checkpoint(floor):
            floor -= 1
        released = sorted(g for g in self._held_gens if 0 < g < floor)
        for g in released:
            self._held_gens.discard(g)
            space.release(self.pid, f"ct:{g}", self.sim.now)
            space.release(self.pid, f"log:{g}", self.sim.now)
            self.trace("ckpt.gc", csn=g)
        self.local.discard("log")
        self._log_item = None
        self.trace("ckpt.finalize", csn=eff.csn, reason=eff.reason,
                   log_msgs=len(entries), log_bytes=fc.log_bytes,
                   flush_bytes=nbytes)
        self.runtime.storage.write(self.pid, nbytes,
                                   label=f"fin:{self.pid}:{eff.csn}",
                                   callback=callback)
        self.current_tentative = None

    # -- rollback recovery ------------------------------------------------------------------

    def rollback_to(self, csn: int, restart_app: bool = True) -> None:
        """Restore this process to its finalized checkpoint ``C_{i,csn}``.

        Executes the paper's recovery at one process: the stable state
        ``CT_{i,csn}`` plus a replay of ``logSet_{i,csn}`` reconstructs the
        state at ``CFE_{i,csn}``.  Everything after that point is discarded:
        later tentative/finalized checkpoints, the current log, the
        verification windows, control-plane dedup state for later rounds,
        and any timers.  Called on *every* process by
        :class:`repro.recovery.restart.RecoveryManager` (system-wide
        rollback to the last committed global checkpoint, §1).
        """
        if csn not in self.finalized:
            raise ValueError(
                f"P{self.pid} has no finalized checkpoint {csn}")
        self.halted = False
        # Kill every continuation chain of the discarded execution (app
        # send loops, flush polls, ...).
        self.incarnation += 1
        # Protocol state back to "just finalized csn".
        m = self.machine
        m.restore(csn, Status.NORMAL, set())
        m._suppressed_csn = None
        m._ck_req_sent = {c for c in m._ck_req_sent if c <= csn}
        m._ck_end_sent = {c for c in m._ck_end_sent if c <= csn}
        m._ck_bgn_sent = {c for c in m._ck_bgn_sent if c <= csn}
        # Discard rolled-back checkpoints and their stable-space claims.
        space = self.runtime.storage.space
        for k in [k for k in self.finalized if k > csn]:
            del self.finalized[k]
            self._held_gens.discard(k)
            space.release(self.pid, f"ct:{k}", self.sim.now)
            space.release(self.pid, f"log:{k}", self.sim.now)
        for k in [k for k in self.tentatives if k > csn]:
            del self.tentatives[k]
            if k in self._flush_submitted:
                self._flush_submitted.discard(k)
                space.release(self.pid, f"ct:{k}", self.sim.now)
        self.current_tentative = None
        self._log_entries = []
        self._log_bytes = 0
        self._window_sent.clear()
        self._window_recv.clear()
        self.local.clear()
        self._log_item = None
        self._conv_timer.cancel()
        self._init_timer.cancel()
        # Restore the application state recovery reconstructs: CT's digest
        # plus the selective log's replay.
        self.state_digest = self.finalized[csn].replay_digest()
        self.trace("ckpt.rollback", csn=csn, digest=self.state_digest)
        # Resume: scheduled checkpointing restarts; the application is
        # restarted from the recovered state (re-execution of lost work).
        self._arm_first_initiation()
        if restart_app and self.app is not None:
            self.app.on_start(self)

    # -- verification ---------------------------------------------------------------------

    def checkpoint_records(self) -> dict[int, CheckpointRecord]:
        """Cumulative recorded-event sets per finalized checkpoint.

        ``C_{i,k}`` records everything ``C_{i,k-1}`` does plus its own
        window increment, so the cumulative sets are prefix unions of the
        per-checkpoint increments.
        """
        out: dict[int, CheckpointRecord] = {}
        sent: set[int] = set()
        recv: set[int] = set()
        for csn in sorted(self.finalized):
            fc = self.finalized[csn]
            sent |= fc.new_sent_uids
            recv |= fc.new_recv_uids
            out[csn] = CheckpointRecord(
                pid=self.pid, seq=csn, taken_at=fc.tentative.taken_at,
                finalized_at=fc.finalized_at,
                sent_uids=frozenset(sent), recv_uids=frozenset(recv),
                logged_uids=fc.logged_uids,
                state_bytes=fc.tentative.state_bytes,
                log_bytes=fc.log_bytes)
        return out

    @property
    def status(self) -> str:
        """Convenience: the machine's status as a string (for tests/examples)."""
        return self.machine.stat.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OptimisticProcess(P{self.pid}, csn={self.machine.csn}, "
                f"{self.status}, finalized={sorted(self.finalized)})")
