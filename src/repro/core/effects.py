"""Effect commands emitted by the protocol state machine.

The state machine (:mod:`repro.core.state_machine`) is pure logic: it never
touches the simulator, network or storage.  Every handler returns a list of
effects; the host (:mod:`repro.core.host`) executes them.  This command
split is what makes the Figure 3/4 case analysis unit-testable in isolation
— the protocol tests assert on effect lists, not on simulated side effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from .types import ControlType


class Effect:
    """Marker base class for protocol effects."""

    __slots__ = ()


@dataclass(frozen=True)
class TakeTentative(Effect):
    """Capture process state as ``CT_{i,csn}`` (procedure of §3.4.1)."""

    csn: int


@dataclass(frozen=True)
class Finalize(Effect):
    """Flush ``CT_{i,csn}`` + message log to stable storage (§3.4.4).

    ``exclude_uid`` is the paper's ``logSet_i - {M}`` rule: the message that
    *revealed* a peer's finalization is not part of this checkpoint (it will
    be recorded by the next one).  ``None`` when no exclusion applies.
    ``reason`` tags which protocol case fired, for experiment breakdowns.
    """

    csn: int
    exclude_uid: int | None
    reason: str


@dataclass(frozen=True)
class SendControl(Effect):
    """Send ``CM(ctype, csn)`` to ``dst``."""

    dst: int
    ctype: ControlType
    csn: int


@dataclass(frozen=True)
class BroadcastControl(Effect):
    """Send ``CM(ctype, csn)`` to every other process (P_0's CK_END duty)."""

    ctype: ControlType
    csn: int


@dataclass(frozen=True)
class ArmTimer(Effect):
    """(Re)arm the convergence timer for the current tentative checkpoint."""

    csn: int


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Cancel the convergence timer (finalized, or a control wave exists)."""


@dataclass(frozen=True)
class Anomaly(Effect):
    """A message that the paper proves impossible arrived anyway.

    Emitted instead of crashing so failure-injection experiments (where the
    impossibility proofs' assumptions are deliberately broken) can observe
    and count these; normal runs assert zero anomalies.
    """

    description: str
