"""Core protocol types: statuses, piggyback, checkpoint objects.

Mirrors the paper's notation (§3.1, §3.3):

* ``Status`` — ``stat_i`` ∈ {normal, tentative};
* ``Piggyback`` — the ``(csn_i, stat_i, tentSet_i)`` triple carried on every
  application message (§3.4.2);
* ``ControlType`` — ``CK_BGN`` / ``CK_REQ`` / ``CK_END`` (§3.5.1);
* ``TentativeCheckpoint`` — ``CT_{i,k}``;
* ``FinalizedCheckpoint`` — ``C_{i,k} = CT_{i,k} ∪ logSet_{i,k}``.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass, field


class Status(enum.Enum):
    """``stat_i`` — the paper's two process statuses."""

    NORMAL = "normal"
    TENTATIVE = "tentative"


class ControlType(enum.Enum):
    """Control-message types of the generalized algorithm (§3.5.1)."""

    CK_BGN = "CK_BGN"
    CK_REQ = "CK_REQ"
    CK_END = "CK_END"


def piggyback_bytes(n: int) -> int:
    """Wire cost of a piggyback for an N-process system.

    4 bytes of csn + 1 byte of status + an N-bit membership bitmap —
    the natural dense encoding; what the overhead experiments charge.
    Module-level so hot senders can price the piggyback without holding
    an instance.
    """
    return 4 + 1 + math.ceil(n / 8)


@dataclass(frozen=True, slots=True)
class Piggyback:
    """``(M.csn, M.stat, M.tentSet)`` attached to an application message.

    ``tent_set`` is a frozenset of process ids — the sender's knowledge of
    who has taken a tentative checkpoint with sequence number ``csn``.

    Instances are interned per state machine (see
    :meth:`repro.core.state_machine.OptimisticStateMachine.piggyback`), so
    one is built per *state change*, not per send.
    """

    csn: int
    stat: Status
    tent_set: frozenset[int]

    def encoded_bytes(self, n: int) -> int:
        """Wire cost of the piggyback; see :func:`piggyback_bytes`."""
        return piggyback_bytes(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        members = ",".join(f"P{p}" for p in sorted(self.tent_set))
        return f"Piggyback(csn={self.csn}, {self.stat.value}, {{{members}}})"


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """``CM(type, csn)`` — §3.5.1's two-field control message."""

    ctype: ControlType
    csn: int

    #: Wire size: 1 byte of type + 4 bytes of csn + small framing.
    #: (Unannotated, so it stays a class attribute under ``slots=True``.)
    ENCODED_BYTES = 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CM({self.ctype.value}, {self.csn})"


@dataclass(slots=True)
class LogEntry:
    """One message in ``logSet_{i,k}``: direction + identity + size."""

    uid: int
    nbytes: int
    direction: str  # "sent" | "recv"
    time: float


def fold_digest(digest: int, uid: int) -> int:
    """One step of the application-state digest.

    The simulated "application state" of a process is modelled as a fold
    over the uids of the messages it has processed, in processing order —
    a stand-in for arbitrary deterministic state evolution.  Recovery
    semantics become *checkable*: restoring ``CT`` and replaying the
    selective log must reproduce the digest the checkpoint claims
    (see :meth:`FinalizedCheckpoint.replay_digest` and the recovery tests).
    """
    # Simple split-mix style step: deterministic, order-sensitive, cheap.
    return (digest * 1_000_003 + uid + 0x9E3779B9) % (1 << 61)


@dataclass
class TentativeCheckpoint:
    """``CT_{i,k}`` — a process state captured optimistically."""

    pid: int
    csn: int
    taken_at: float
    state_bytes: int
    #: Set once the tentative state has been flushed to stable storage
    #: (may happen any time between ``taken_at`` and finalization).
    flushed_at: float | None = None
    #: Application-state digest at capture time (see :func:`fold_digest`).
    digest: int = 0
    #: Full state capture (True) or an incremental delta (False) — deltas
    #: are restorable only together with the chain back to the last full
    #: capture (see ``OptimisticConfig.incremental_every``).
    full: bool = True

    @property
    def flushed(self) -> bool:
        return self.flushed_at is not None


@dataclass
class FinalizedCheckpoint:
    """``C_{i,k} = CT_{i,k} ∪ logSet_{i,k}`` — a permanent local checkpoint.

    ``new_sent_uids`` / ``new_recv_uids`` are the application-message uids
    whose send/receive this checkpoint records *beyond* ``C_{i,k-1}``
    (recorded sets are monotone in k, so increments suffice; the verifier
    accumulates them).
    """

    pid: int
    csn: int
    tentative: TentativeCheckpoint
    finalized_at: float
    log_entries: list[LogEntry] = field(default_factory=list)
    new_sent_uids: frozenset[int] = field(default_factory=frozenset)
    new_recv_uids: frozenset[int] = field(default_factory=frozenset)
    #: How the finalization was triggered (for diagnostics / experiments):
    #: "piggyback.allset", "piggyback.peer_normal", "piggyback.next_csn",
    #: "control.ck_req", "control.ck_end", or "control.next_csn".
    reason: str = ""

    @functools.cached_property
    def log_bytes(self) -> int:
        """Total bytes of the selective message log.

        Cached: ``log_entries`` is fixed at construction, and finalization
        reads this several times per checkpoint (byte accounting, stable
        space retain, trace record).
        """
        return sum(e.nbytes for e in self.log_entries)

    @property
    def logged_uids(self) -> frozenset[int]:
        """uids of every message (sent or received) in ``logSet_{i,k}``."""
        return frozenset(e.uid for e in self.log_entries)

    def replay_digest(self) -> int:
        """The application state recovery reconstructs from this checkpoint.

        Restore ``CT`` (its capture-time digest), then replay the logged
        *received* messages in their original processing order.  Note this
        deliberately differs from the live state at ``CFE`` whenever the
        paper's ``logSet - {M}`` exclusion applied: the trigger message
        ``M`` was processed before finalization but is NOT replayable —
        exactly what keeps ``S_k`` orphan-free (its sender's ``C_{j,k}``
        predates sending ``M``).
        """
        digest = self.tentative.digest
        # log_entries preserve processing order (appended as they happened).
        for entry in self.log_entries:
            if entry.direction == "recv":
                digest = fold_digest(digest, entry.uid)
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"C_({self.pid},{self.csn})[log={len(self.log_entries)}msg/"
                f"{self.log_bytes}B, at={self.finalized_at:.4g}, {self.reason}]")
