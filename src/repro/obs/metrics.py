"""Counters, gauges and histograms with deterministic snapshots.

A :class:`MetricsRegistry` is the accumulation side of the observability
layer: hosts bump counters and record histogram observations as the run
progresses, and :meth:`MetricsRegistry.snapshot` reduces everything to a
plain sorted-key dict — the payload of a ``metrics`` trace event and the
``metrics`` section of every ``repro.bench/1`` file.

Determinism contract: a snapshot is a pure function of the *multiset of
observations*, never of wall time, insertion order, or process identity.
Two runs of the same seeded config — serial or under ``--jobs 2`` —
produce byte-identical ``json.dumps(snapshot, sort_keys=True)`` output
(this is tested).  Histograms therefore keep only order-insensitive
aggregates (count/sum/min/max), not raw sample lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """A monotonically increasing count (messages sent, rounds done, …)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (pending writes, log bytes held, …)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the level with ``value``."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the level by ``delta`` (either sign)."""
        self.value += delta


@dataclass
class Histogram:
    """Order-insensitive distribution summary of observed values.

    Keeps only aggregates so that the snapshot is identical however the
    observations were interleaved (the parallel-executor determinism
    contract); quantiles belong to the span report, which works on the
    full event stream.
    """

    name: str
    count: int = 0
    sum: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        """Record one sample into the aggregates."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """The snapshot row: count/sum/min/max/mean (zeros when empty)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Named counters/gauges/histograms with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The named :class:`Counter`, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The named :class:`Gauge`, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The named :class:`Histogram`, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (counters add,
        gauges take the incoming value, histogram aggregates combine).

        Lets the harness aggregate per-run registries into one batch
        registry without caring which worker produced which run.
        """
        for name in sorted(snapshot.get("counters", {})):
            self.counter(name).inc(float(snapshot["counters"][name]))
        for name in sorted(snapshot.get("gauges", {})):
            self.gauge(name).set(float(snapshot["gauges"][name]))
        for name in sorted(snapshot.get("histograms", {})):
            h = snapshot["histograms"][name]
            mine = self.histogram(name)
            if h["count"]:
                mine.count += int(h["count"])
                mine.sum += float(h["sum"])
                mine.min = min(mine.min, float(h["min"]))
                mine.max = max(mine.max, float(h["max"]))

    def snapshot(self) -> dict[str, Any]:
        """All metrics as a plain dict with deterministically sorted keys."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }
