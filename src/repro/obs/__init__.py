"""repro.obs — the unified observability layer.

One versioned event schema, one :class:`Tracer` interface, one
:class:`MetricsRegistry`, shared by the simulator, the live runtime and
the harness; see docs/OBSERVABILITY.md for the span taxonomy, sink
catalogue and determinism contract.
"""

from .bridge import DesBridge, attach_des_tracer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import DesProfiler, LoopLagProbe, wall_now
from .report import (
    PhaseStats,
    Span,
    TraceReport,
    build_report,
    load_events,
    pair_spans,
    report_from,
    round_spans,
    validate_file,
)
from .schema import (
    BENCH_SCHEMA,
    EVENT_TYPES,
    HOSTS,
    PHASES,
    SCHEMA_VERSION,
    SchemaError,
    TraceEvent,
    decode_event,
    encode_event,
    validate_bench_payload,
    validate_event,
    validate_metrics_snapshot,
)
from .sinks import (
    BroadcastSink,
    DashboardSink,
    JsonlSink,
    MemorySink,
    Subscription,
)
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "BENCH_SCHEMA",
    "BroadcastSink",
    "Counter",
    "DashboardSink",
    "DesBridge",
    "DesProfiler",
    "EVENT_TYPES",
    "Gauge",
    "HOSTS",
    "Histogram",
    "JsonlSink",
    "LoopLagProbe",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASES",
    "PhaseStats",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Subscription",
    "TraceEvent",
    "TraceReport",
    "Tracer",
    "attach_des_tracer",
    "build_report",
    "decode_event",
    "encode_event",
    "load_events",
    "pair_spans",
    "report_from",
    "round_spans",
    "validate_bench_payload",
    "validate_event",
    "validate_file",
    "validate_metrics_snapshot",
    "wall_now",
]
