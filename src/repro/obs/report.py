"""Span aggregation: the ``repro trace report`` engine.

Reads schema-conformant JSONL trace streams (a single file, or every
``trace*.jsonl`` under a live run directory), pairs ``span.start`` /
``span.end`` events by ``(phase, key)``, and reduces them to a
per-phase latency/overhead breakdown — the same table for a simulated
run and a live one, which is the whole point of the shared schema.

Derived rows:

* ``round`` — per-csn global checkpoint rounds are not emitted directly;
  a round's span is ``[min(start), max(end)]`` of the ``tentative``
  spans with that csn across all pids (the paper's convergence window:
  first tentative take → last finalize).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from .schema import SchemaError, TraceEvent, decode_event


def iter_trace_paths(target: str | Path) -> list[Path]:
    """The trace files behind a CLI target: the file itself, or every
    ``trace*.jsonl`` under a directory (a live run dir)."""
    target = Path(target)
    if target.is_dir():
        return sorted(target.glob("trace*.jsonl"))
    return [target]


def load_events(target: str | Path) -> list[TraceEvent]:
    """Decode (and validate) every event under ``target``.

    Raises :class:`~repro.obs.schema.SchemaError` on the first invalid
    event, naming the file and line.
    """
    events: list[TraceEvent] = []
    paths = iter_trace_paths(target)
    if not paths:
        raise FileNotFoundError(f"no trace*.jsonl files under {target}")
    for path in paths:
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SchemaError(
                        f"{path}:{lineno}: not JSON: {exc}") from exc
                try:
                    events.append(decode_event(data))
                except SchemaError as exc:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc
    return events


def validate_file(target: str | Path) -> list[str]:
    """Every schema violation under ``target`` (empty = fully valid).

    Unlike :func:`load_events` this does not stop at the first problem —
    the CI trace-smoke job wants the full list.
    """
    problems: list[str] = []
    paths = iter_trace_paths(target)
    if not paths:
        return [f"no trace*.jsonl files under {target}"]
    for path in paths:
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    decode_event(json.loads(line))
                except (json.JSONDecodeError, SchemaError) as exc:
                    problems.append(f"{path}:{lineno}: {exc}")
    return problems


@dataclass
class Span:
    """One paired start/end interval."""

    phase: str
    key: str
    pid: int
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """End minus start, in the host's time unit."""
        return self.end - self.start


@dataclass
class PhaseStats:
    """Latency summary of all completed spans of one phase."""

    phase: str
    count: int
    total: float
    mean: float
    p_max: float

    @classmethod
    def of(cls, phase: str, durations: list[float]) -> "PhaseStats":
        """Reduce a list of span durations to one summary row."""
        if not durations:
            return cls(phase=phase, count=0, total=0.0, mean=0.0, p_max=0.0)
        total = sum(durations)
        return cls(phase=phase, count=len(durations), total=total,
                   mean=total / len(durations), p_max=max(durations))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready row for ``--format json``."""
        return {"phase": self.phase, "count": self.count,
                "total": self.total, "mean": self.mean, "max": self.p_max}


def pair_spans(events: Iterable[TraceEvent]) -> tuple[list[Span], list[str]]:
    """Match ``span.start``/``span.end`` by ``(phase, key)``.

    Returns the completed spans plus a list of problems (unmatched ends,
    never-closed starts) — a truncated horizon legitimately leaves spans
    open, so problems are reported, not raised.
    """
    open_spans: dict[tuple[str, str], TraceEvent] = {}
    spans: list[Span] = []
    problems: list[str] = []
    for ev in events:
        if ev.ev == "span.start":
            k = (ev.phase or "", ev.key or "")
            if k in open_spans:
                problems.append(f"span {k} started twice")
            open_spans[k] = ev
        elif ev.ev == "span.end":
            k = (ev.phase or "", ev.key or "")
            start = open_spans.pop(k, None)
            if start is None:
                problems.append(f"span.end without start: {k}")
                continue
            spans.append(Span(phase=ev.phase or "", key=ev.key or "",
                              pid=start.pid, start=start.t, end=ev.t,
                              attrs={**start.attrs, **ev.attrs}))
    for k in sorted(open_spans):
        problems.append(f"span never closed: {k}")
    return spans, problems


def round_spans(spans: Iterable[Span]) -> list[Span]:
    """Derive per-csn ``round`` spans from the ``tentative`` spans.

    A round ``k``'s window is first tentative take → last finalize of
    ``C_{i,k}`` across all pids (see module docstring).
    """
    by_csn: dict[int, list[Span]] = {}
    for s in spans:
        if s.phase != "tentative":
            continue
        csn = s.attrs.get("csn")
        if csn is None:
            csn = int(s.key.split(":")[-1])
        by_csn.setdefault(int(csn), []).append(s)
    out = []
    for csn in sorted(by_csn):
        members = by_csn[csn]
        out.append(Span(phase="round", key=f"csn:{csn}", pid=-1,
                        start=min(s.start for s in members),
                        end=max(s.end for s in members),
                        attrs={"csn": csn, "pids": len(members)}))
    return out


#: Point/counter names that record a fault being *injected* (repro.chaos).
_INJECTED_POINTS = ("failure.crash", "partition.begin")
#: …and names that record the system *recovering* from one: redeliveries,
#: retransmissions, heals, rollbacks, completed recoveries.
_RECOVERED_NAMES = ("chaos.heal", "partition.heal", "recovery.complete",
                    "ckpt.rollback", "net.retry", "msg.redelivered",
                    "recovery.rollbacks", "recovery.completed")


def fault_summary(points: dict[str, int],
                  counters: dict[str, float]) -> dict[str, dict[str, int]]:
    """Injected-fault vs recovered-action tallies from a trace stream.

    ``repro chaos`` cells assert on these: injected counts come from the
    ``chaos.*`` injection points (DES bridge and live ChaosEndpoint emit
    the same names) plus crash/partition events; recovered counts from
    heals, retransmissions, redeliveries and rollback completions.
    """
    injected: dict[str, int] = {}
    recovered: dict[str, int] = {}
    for name, count in points.items():
        if (name.startswith("chaos.")
                and name not in ("chaos.heal", "chaos.cell")):
            injected[name] = injected.get(name, 0) + count
        elif name in _INJECTED_POINTS:
            injected[name] = injected.get(name, 0) + count
        elif name in _RECOVERED_NAMES:
            recovered[name] = recovered.get(name, 0) + count
    for name, value in counters.items():
        if name.startswith("chaos.injected."):
            short = "chaos." + name[len("chaos.injected."):]
            injected.setdefault(short, 0)
            injected[short] = max(injected[short], int(value))
        elif name in _RECOVERED_NAMES:
            recovered[name] = recovered.get(name, 0) + int(value)
    return {"injected": dict(sorted(injected.items())),
            "recovered": dict(sorted(recovered.items()))}


@dataclass
class TraceReport:
    """The per-phase breakdown plus stream-level tallies."""

    hosts: list[str]
    event_count: int
    phase_stats: list[PhaseStats]
    points: dict[str, int]
    problems: list[str]
    counters: dict[str, float]

    @property
    def faults(self) -> dict[str, dict[str, int]]:
        """Injected-fault vs recovered-action tallies (may be empty)."""
        return fault_summary(self.points, self.counters)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report for ``--format json`` / CI assertions."""
        return {
            "hosts": self.hosts,
            "events": self.event_count,
            "phases": [s.as_dict() for s in self.phase_stats],
            "points": dict(sorted(self.points.items())),
            "counters": dict(sorted(self.counters.items())),
            "faults": self.faults,
            "problems": list(self.problems),
        }

    def render(self) -> str:
        """Human-readable report: phase table + tallies + problems."""
        lines = [f"trace report — {self.event_count} events "
                 f"from host(s): {', '.join(self.hosts) or '-'}",
                 "",
                 f"{'phase':<12} {'count':>7} {'total':>12} "
                 f"{'mean':>12} {'max':>12}"]
        for s in self.phase_stats:
            lines.append(f"{s.phase:<12} {s.count:>7} {s.total:>12.6g} "
                         f"{s.mean:>12.6g} {s.p_max:>12.6g}")
        if self.points:
            lines.append("")
            lines.append("points: " + "  ".join(
                f"{name}={count}"
                for name, count in sorted(self.points.items())))
        if self.counters:
            lines.append("counters: " + "  ".join(
                f"{name}={value:g}"
                for name, value in sorted(self.counters.items())))
        faults = self.faults
        if faults["injected"] or faults["recovered"]:
            lines.append("")
            lines.append("faults injected: " + ("  ".join(
                f"{name}={count}"
                for name, count in faults["injected"].items()) or "-"))
            lines.append("recovered actions: " + ("  ".join(
                f"{name}={count}"
                for name, count in faults["recovered"].items()) or "-"))
        if self.problems:
            lines.append("")
            lines.append(f"problems ({len(self.problems)}):")
            lines.extend(f"  - {p}" for p in self.problems[:20])
        return "\n".join(lines)


def build_report(events: list[TraceEvent]) -> TraceReport:
    """Aggregate a decoded event stream into a :class:`TraceReport`."""
    spans, problems = pair_spans(events)
    spans = spans + round_spans(spans)
    durations: dict[str, list[float]] = {}
    for s in spans:
        durations.setdefault(s.phase, []).append(s.duration)
    phase_order = ("run", "round", "tentative", "finalize", "flush",
                   "recovery")
    stats = [PhaseStats.of(phase, sorted(durations[phase]))
             for phase in phase_order if phase in durations]
    for phase in sorted(set(durations) - set(phase_order)):
        stats.append(PhaseStats.of(phase, sorted(durations[phase])))
    points: dict[str, int] = {}
    counters: dict[str, float] = {}
    hosts: dict[str, None] = {}
    for ev in events:
        hosts.setdefault(ev.host)
        if ev.ev == "point" and ev.name:
            points[ev.name] = points.get(ev.name, 0) + 1
        elif ev.ev == "counter" and ev.name:
            counters[ev.name] = counters.get(ev.name, 0.0) + (ev.value or 0.0)
        elif ev.ev == "metrics":
            for name in sorted(ev.attrs.get("counters", {})):
                counters[name] = float(ev.attrs["counters"][name])
    return TraceReport(hosts=sorted(hosts), event_count=len(events),
                       phase_stats=stats, points=points, problems=problems,
                       counters=counters)


def report_from(target: str | Path) -> TraceReport:
    """Load + aggregate: the one-call form the CLI uses."""
    return build_report(load_events(target))
