"""DES → obs bridge: schema events out of the simulator's trace stream.

The simulator side needs **no new emission sites**: ``core.host`` and
``repro.storage`` already record every protocol occurrence into
``sim.trace`` (:class:`repro.des.trace.TraceRecorder`).  This bridge
subscribes a translator that maps those records onto the versioned
schema, live, as the run executes:

=========================  =============================================
DES trace kind             schema event
=========================  =============================================
``ckpt.tentative``         ``span.start`` phase=``tentative`` key=pid:csn
``ckpt.finalize``          ``span.end`` phase=``tentative`` + ``span.start``
                           phase=``finalize`` (ends at the fin flush)
``storage.write.arrive``   ``span.start`` phase=``flush`` key=pid:label
``storage.write.finish``   ``span.end`` phase=``flush`` (+ ends the
                           ``finalize`` span for ``fin:`` labels)
``ctl.send`` / ``ctl.recv``  ``point`` events (CK_BGN/CK_REQ/CK_END round
                           traffic; the report derives round latency)
``ckpt.rollback``          ``point`` phase=``recovery``
``ckpt.anomaly``           ``point``
``msg.send``/``msg.deliver``  registry counters only — app traffic is the
                           hot path and gets no per-message events; the
                           totals are folded in one pass at run end
``chaos.*``                ``point`` + ``chaos.injected.<kind>`` counters
                           (fault-injection sites; repro.chaos)
``partition.begin/heal``   ``point`` + counters
``failure.crash`` /        ``point`` + counters (the injected crash and
``recovery.complete``      the rollback that recovers from it)
=========================  =============================================

Chaos/fault points deliberately omit the message ``uid`` carried by the
DES records: uids come from a module-global counter that never resets,
so forwarding them would break byte-identical reruns within one process.

Timestamps are ``sim.now`` (simulated seconds) throughout, so bridged
streams are deterministic: same config + seed ⇒ byte-identical JSONL.
When tracing is disabled nothing subscribes, so the simulator's hot
path is untouched.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from .metrics import MetricsRegistry
from .tracer import Tracer


def _present(**attrs: Any) -> dict[str, Any]:
    """Drop ``None`` values — optional record fields a protocol omitted."""
    return {k: v for k, v in attrs.items() if v is not None}


class DesBridge:
    """The subscriber: one per traced simulation run.

    The simulator emits a trace record for *every* message send/deliver,
    so a naive per-record subscriber sits on the hot path.  Two levers
    keep the traced run within the overhead budget: the protocol-event
    handlers register as *kind-filtered* subscribers (the recorder never
    calls them for ``msg.*`` traffic), and the high-volume message
    counters are folded in one pass at run end (:meth:`finish`) instead
    of being bumped 40 000 times live.
    """

    #: kind → handler-method name; the subscription table.
    HANDLED_KINDS = {
        "ckpt.tentative": "_on_tentative",
        "ckpt.finalize": "_on_finalize",
        "storage.write.arrive": "_on_write_arrive",
        "storage.write.finish": "_on_write_finish",
        "ctl.send": "_on_ctl_send",
        "ctl.recv": "_on_ctl_recv",
        "ckpt.rollback": "_on_rollback",
        "ckpt.anomaly": "_on_anomaly",
        "chaos.drop": "_on_chaos",
        "chaos.duplicate": "_on_chaos",
        "chaos.delay": "_on_chaos",
        "chaos.reorder": "_on_chaos",
        "chaos.storage": "_on_chaos_storage",
        "partition.begin": "_on_partition",
        "partition.heal": "_on_partition",
        "failure.crash": "_on_failure",
        "recovery.complete": "_on_recovery_complete",
    }

    #: high-volume kinds counted in one pass at run end, never live.
    BULK_COUNTS = {
        "msg.send": "msg.sent",
        "msg.deliver": "msg.delivered",
        "msg.drop": "msg.dropped",
        "ckpt.gc": "ckpt.gc",
    }

    def __init__(self, tracer: Tracer,
                 registry: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()
        self._handlers: dict[str, Any] = {
            kind: getattr(self, name)
            for kind, name in self.HANDLED_KINDS.items()}

    def __call__(self, rec: Any) -> None:
        """Translate one :class:`~repro.des.trace.TraceRecord`."""
        handler = self._handlers.get(rec.kind)
        if handler is not None:
            handler(rec)

    def finish(self, sim: Any) -> None:
        """Fold the run's bulk totals into the registry (call once, at end).

        One pass over the recorded stream replaces per-record counter
        bumps for the hot kinds; counters stay absent when the run never
        produced the kind, exactly as live increments would leave them.
        """
        totals = Counter(rec.kind for rec in sim.trace.records)
        for kind, name in self.BULK_COUNTS.items():
            count = totals.get(kind, 0)
            if count:
                self.registry.counter(name).inc(count)
        # Per-cause drop split (gate / crashed / partition / rollback /
        # chaos.*) and redelivered count — same single pass, folded only
        # when the run produced any.
        causes: Counter[str] = Counter()
        redelivered = 0
        for rec in sim.trace.records:
            if rec.kind == "msg.drop":
                causes[rec.data.get("cause", "gate")] += 1
            elif rec.kind == "msg.deliver" and rec.data.get("redelivered"):
                redelivered += 1
        for cause, count in sorted(causes.items()):
            self.registry.counter(f"msg.dropped.{cause}").inc(count)
        if redelivered:
            self.registry.counter("msg.redelivered").inc(redelivered)

    def _on_tentative(self, rec: Any) -> None:
        """``ckpt.tentative`` → span.start phase=tentative.

        Baseline protocols emit the same record kinds with fewer fields
        (no logs, sometimes no sizes), so every optional field goes
        through ``.get`` — absent ones are simply left off the event.
        """
        data, pid = rec.data, rec.process
        reg = self.registry
        reg.counter("ckpt.tentative").inc()
        state_bytes = data.get("bytes")
        if state_bytes is not None:
            reg.histogram("ckpt.state_bytes").observe(state_bytes)
        self.tracer.span_start("tentative", f"{pid}:{data['csn']}",
                               rec.time,
                               **_present(pid=pid, csn=data["csn"],
                                          bytes=state_bytes))

    def _on_finalize(self, rec: Any) -> None:
        """``ckpt.finalize`` → tentative span.end + finalize span.start."""
        data, pid, t = rec.data, rec.process, rec.time
        reg = self.registry
        reg.counter("ckpt.finalize").inc()
        reason = data.get("reason")
        if reason is not None:
            reg.counter(f"ckpt.finalize.{reason}").inc()
        log_msgs, log_bytes = data.get("log_msgs"), data.get("log_bytes")
        if log_msgs is not None:
            reg.histogram("log.msgs").observe(log_msgs)
        if log_bytes is not None:
            reg.histogram("log.bytes").observe(log_bytes)
        key = f"{pid}:{data['csn']}"
        self.tracer.span_end("tentative", key, t,
                             **_present(pid=pid, csn=data["csn"],
                                        reason=reason, log_msgs=log_msgs,
                                        log_bytes=log_bytes))
        if "flush_bytes" in data:
            # Optimistic host: the finalize span runs until the fin:*
            # stable-storage write completes.  Baselines have no such
            # deferred write, so no span is opened for them.
            self.tracer.span_start("finalize", key, t, pid=pid,
                                   csn=data["csn"],
                                   flush_bytes=data["flush_bytes"])

    def _on_write_arrive(self, rec: Any) -> None:
        """``storage.write.arrive`` → span.start phase=flush."""
        data, pid = rec.data, rec.process
        self.tracer.span_start("flush", f"{pid}:{data['label']}", rec.time,
                               pid=pid, label=data["label"],
                               bytes=data["bytes"])

    def _on_write_finish(self, rec: Any) -> None:
        """``storage.write.finish`` → flush span.end (+ finalize end)."""
        data, pid, t = rec.data, rec.process, rec.time
        reg = self.registry
        reg.counter("flush.writes").inc()
        reg.counter("flush.bytes").inc(data["bytes"])
        reg.histogram("flush.latency").observe(data["latency"])
        label = data["label"]
        self.tracer.span_end("flush", f"{pid}:{label}", t, pid=pid,
                             label=label, latency=data["latency"])
        if label.startswith("fin:"):
            # fin:{pid}:{csn} — closing the finalize span opened at
            # the ckpt.finalize record.
            _, fpid, csn = label.split(":")
            self.tracer.span_end("finalize", f"{fpid}:{csn}", t,
                                 pid=int(fpid), csn=int(csn))

    def _on_ctl_send(self, rec: Any) -> None:
        """``ctl.send`` → point event + control counters."""
        data = rec.data
        reg = self.registry
        reg.counter("ctl.sent").inc()
        reg.counter(f"ctl.sent.{data['ctype']}").inc()
        self.tracer.point("ctl.send", rec.time, pid=rec.process,
                          **_present(ctype=data["ctype"],
                                     csn=data.get("csn"),
                                     dst=data.get("dst")))

    def _on_ctl_recv(self, rec: Any) -> None:
        """``ctl.recv`` → point event + control counter."""
        data = rec.data
        self.registry.counter("ctl.recv").inc()
        self.tracer.point("ctl.recv", rec.time, pid=rec.process,
                          **_present(ctype=data["ctype"],
                                     csn=data.get("csn"),
                                     src=data.get("src")))

    def _on_rollback(self, rec: Any) -> None:
        """``ckpt.rollback`` → recovery point event."""
        self.registry.counter("recovery.rollbacks").inc()
        self.tracer.point("ckpt.rollback", rec.time, pid=rec.process,
                          **_present(csn=rec.data.get("csn")))

    def _on_anomaly(self, rec: Any) -> None:
        """``ckpt.anomaly`` → anomaly point event."""
        self.registry.counter("anomalies").inc()
        self.tracer.point("ckpt.anomaly", rec.time, pid=rec.process,
                          description=rec.data["description"])

    def _on_chaos(self, rec: Any) -> None:
        """``chaos.drop/duplicate/delay/reorder`` → injected-fault point.

        The record's ``uid`` is not forwarded (module-global counter;
        would break byte-identical reruns) — src/kind locate the message.
        """
        data = rec.data
        fault = rec.kind.split(".", 1)[1]
        self.registry.counter(f"chaos.injected.{fault}").inc()
        self.tracer.point(rec.kind, rec.time, pid=rec.process,
                          **_present(src=data.get("src"),
                                     kind=data.get("kind"),
                                     delay=data.get("delay")))

    def _on_chaos_storage(self, rec: Any) -> None:
        """``chaos.storage`` → injected storage-fault point."""
        data = rec.data
        self.registry.counter(f"chaos.injected.{data['fault']}").inc()
        self.tracer.point(rec.kind, rec.time, pid=rec.process,
                          fault=data["fault"],
                          **_present(label=data.get("label") or None))

    def _on_partition(self, rec: Any) -> None:
        """``partition.begin`` / ``partition.heal`` → point + counter."""
        data = rec.data
        self.registry.counter(rec.kind).inc()
        self.tracer.point(rec.kind, rec.time, pid=rec.process,
                          **_present(a=data.get("a"), b=data.get("b"),
                                     released=data.get("released")))

    def _on_failure(self, rec: Any) -> None:
        """``failure.crash`` → injected-crash point."""
        self.registry.counter("failure.crashes").inc()
        self.tracer.point(rec.kind, rec.time, pid=rec.process)

    def _on_recovery_complete(self, rec: Any) -> None:
        """``recovery.complete`` → recovered-action point."""
        data = rec.data
        self.registry.counter("recovery.completed").inc()
        self.tracer.point(rec.kind, rec.time, pid=rec.process,
                          **_present(seq=data.get("seq"),
                                     dropped=data.get("dropped")))


def attach_des_tracer(sim: Any, tracer: Tracer,
                      registry: MetricsRegistry | None = None) -> DesBridge:
    """Subscribe a translating bridge to a simulator's trace stream.

    Call *before* ``sim.run()`` and :meth:`DesBridge.finish` after;
    returns the bridge (whose ``registry`` accumulates the run's
    metrics).  Handlers subscribe kind-filtered, so per-message records
    never reach the bridge.  Do not attach when tracing is disabled —
    the absence of a subscriber is the zero-cost path.
    """
    bridge = DesBridge(tracer, registry)
    for kind, handler in bridge._handlers.items():
        sim.trace.subscribe(handler, kinds=(kind,))
    return bridge
