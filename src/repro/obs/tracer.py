"""The Tracer interface — the one emission surface both hosts share.

A :class:`Tracer` fans schema events (:mod:`repro.obs.schema`) out to
sinks (:mod:`repro.obs.sinks`).  The zero-cost-when-disabled contract:
instrumented code guards every emission site with ``if tracer.enabled:``
(or holds :data:`NULL_TRACER`, whose ``enabled`` is ``False``), so a
non-traced run performs no event construction, no dict building and no
sink calls on the hot path — the only residue is one attribute read per
site.  This is what keeps the <10% overhead budget honest.

Timestamps are always passed in explicitly by the caller (``sim.now``
for DES, ``loop.time()`` for live): the tracer itself never reads any
clock, which is why this module lints clean under REP001 without
suppressions.
"""

from __future__ import annotations

from typing import Any, Iterable

from .schema import TraceEvent


class Tracer:
    """Fans :class:`TraceEvent` objects out to sinks.

    ``host`` stamps every event (``"des"``, ``"live"`` or ``"harness"``);
    ``pid`` is a default process id used when an emission site does not
    pass one (harness-level events use pid -1 by convention).
    """

    enabled = True

    def __init__(self, sinks: Iterable[Any], *, host: str,
                 pid: int = -1) -> None:
        self._sinks = list(sinks)
        self.host = host
        self.pid = pid

    def emit(self, event: TraceEvent) -> None:
        """Hand one already-built event to every sink."""
        for sink in self._sinks:
            sink.write(event)

    # -- convenience constructors -----------------------------------------
    # Each builds one event; callers guard with `if tracer.enabled:` so
    # none of this runs when tracing is off.

    def span_start(self, phase: str, key: str, t: float, *,
                   pid: int | None = None,
                   **attrs: Any) -> None:
        """Open the ``phase`` span identified by ``key`` at time ``t``."""
        self.emit(TraceEvent(ev="span.start", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             phase=phase, key=key, attrs=attrs))

    def span_end(self, phase: str, key: str, t: float, *,
                 pid: int | None = None, **attrs: Any) -> None:
        """Close the ``phase`` span identified by ``key`` at time ``t``."""
        self.emit(TraceEvent(ev="span.end", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             phase=phase, key=key, attrs=attrs))

    def point(self, name: str, t: float, *, pid: int | None = None,
              **attrs: Any) -> None:
        """Emit one instantaneous named occurrence."""
        self.emit(TraceEvent(ev="point", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             name=name, attrs=attrs))

    def counter(self, name: str, value: float, t: float, *,
                pid: int | None = None, **attrs: Any) -> None:
        """Emit one counter increment as an event (rarely-used path
        for sparse counts; bulk counting belongs in a registry)."""
        self.emit(TraceEvent(ev="counter", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             name=name, value=value, attrs=attrs))

    def metrics_snapshot(self, snapshot: dict[str, Any], t: float, *,
                         pid: int | None = None) -> None:
        """Emit a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`."""
        self.emit(TraceEvent(ev="metrics", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             attrs=snapshot))

    def profile(self, name: str, t: float, *, pid: int | None = None,
                **attrs: Any) -> None:
        """Emit one profiling sample (event-loop lag, events/sec, …)."""
        self.emit(TraceEvent(ev="profile", host=self.host,
                             pid=self.pid if pid is None else pid, t=t,
                             name=name, attrs=attrs))

    def close(self) -> None:
        """Close every sink that has a ``close`` method."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class NullTracer(Tracer):
    """The disabled tracer: ``enabled`` is False and every method is a
    no-op, so instrumented code can hold one unconditionally."""

    enabled = False

    def __init__(self) -> None:
        super().__init__((), host="harness")

    def emit(self, event: TraceEvent) -> None:
        """Discard the event (disabled tracer)."""
        pass

    def close(self) -> None:
        """Nothing to close (disabled tracer)."""
        pass


#: The shared disabled tracer — hold this instead of None.
NULL_TRACER = NullTracer()
