"""Lightweight profiling hooks for both hosts.

* :class:`DesProfiler` — samples the simulator's hot path (events
  executed, heap size) every N trace records, **off the event heap**:
  it piggybacks on the existing trace-subscriber channel, so it never
  schedules anything and never perturbs event sequence allocation.  Its
  samples are pure functions of simulation state → deterministic, so a
  profiled trace stays byte-identical across reruns.  Opt-in wall-clock
  rate sampling (``rate=True``) adds events/sec — useful interactively,
  excluded from determinism-checked runs.
* :class:`LoopLagProbe` — measures asyncio event-loop lag for the live
  runtime: how late ``sleep(interval)`` wakes up is exactly the delay a
  protocol timer suffers under load.  Uses ``loop.time()``; wall-clock
  by nature, like everything live-scoped.
* :func:`wall_now` — the one real-clock read in ``repro.obs``, confined
  here and suppression-audited; only live/harness-side profiling may
  call it, never anything that feeds a determinism-checked stream.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from .tracer import Tracer


def wall_now() -> float:
    """Real monotonic seconds — live/harness profiling only (see above)."""
    return time.perf_counter()  # repro: allow[REP001] live/harness-scoped profiling clock, never feeds simulated state


class DesProfiler:
    """Simulator hot-path sampler (see module docstring).

    Attach with :meth:`attach` before ``sim.run()``; emits ``profile``
    events named ``des.engine`` with ``executed``/``pending`` counts.
    """

    def __init__(self, tracer: Tracer, *, sample_every: int = 500,
                 rate: bool = False) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.tracer = tracer
        self.sample_every = sample_every
        self.rate = rate
        self._seen = 0
        self._sim: Any = None
        self._last_wall: float | None = None
        self._last_executed = 0

    def attach(self, sim: Any) -> "DesProfiler":
        """Subscribe to ``sim.trace``; call before ``sim.run()``."""
        self._sim = sim
        sim.trace.subscribe(self._on_record)
        return self

    def _on_record(self, rec: Any) -> None:
        self._seen += 1
        if self._seen % self.sample_every != 0:
            return
        if not self.tracer.enabled:
            return
        executed = self._sim.executed
        attrs: dict[str, Any] = {
            "executed": executed,
            "pending": self._sim.pending,
            "trace_records": self._seen,
        }
        if self.rate:
            wall = wall_now()
            if self._last_wall is not None and wall > self._last_wall:
                attrs["events_per_sec"] = (
                    (executed - self._last_executed)
                    / (wall - self._last_wall))
            self._last_wall = wall
            self._last_executed = executed
        self.tracer.profile("des.engine", self._sim.now, **attrs)


class LoopLagProbe:
    """Asyncio event-loop lag sampler for the live runtime.

    Emits ``profile`` events named ``live.loop_lag`` whose ``lag`` attr
    is how many seconds past its deadline the probe's sleep woke up —
    the same delay every protocol timer in the worker experiences.
    """

    def __init__(self, tracer: Tracer, *, pid: int = -1,
                 interval: float = 0.25) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.tracer = tracer
        self.pid = pid
        self.interval = interval
        self._task: asyncio.Task[None] | None = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval)
            after = loop.time()
            lag = max(0.0, (after - before) - self.interval)
            if self.tracer.enabled:
                self.tracer.profile("live.loop_lag", after, pid=self.pid,
                                    lag=lag, interval=self.interval)

    def start(self) -> None:
        """Begin sampling on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.ensure_future(self._run())

    def stop(self) -> None:
        """Cancel the sampling task (idempotent)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
