"""Trace sinks: JSONL export, in-memory capture, terminal dashboard.

Sinks receive already-built :class:`~repro.obs.schema.TraceEvent`
objects from a :class:`~repro.obs.tracer.Tracer`; they never read a
clock themselves (events carry their host's timestamp), so every sink
here is deterministic and REP001-clean.  The dashboard refreshes on
*event count*, not elapsed time, for the same reason.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from .schema import TraceEvent, encode_event


class JsonlSink:
    """Append events to a JSONL file, one sorted-key object per line.

    Sorted keys + explicit timestamps make the file byte-identical across
    reruns of the same seeded config — the property the ``--jobs 2``
    determinism test asserts.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")

    def write(self, event: TraceEvent) -> None:
        """Append one event as a compact sorted-key JSON line."""
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        json.dump(encode_event(event), self._fh, sort_keys=True,
                  separators=(",", ":"))
        self._fh.write("\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


class MemorySink:
    """Keep events in a list — the test double and the report's feeder."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        """Keep the event object."""
        self.events.append(event)

    def encoded(self) -> list[dict[str, Any]]:
        """Every captured event in wire (dict) form."""
        return [encode_event(e) for e in self.events]


class DashboardSink:
    """A line-oriented in-terminal run dashboard.

    Every ``refresh_every`` events it prints one status line summarizing
    the run so far: host time, event count, open/closed span tallies per
    phase, and the latest counter values.  Count-based refresh (rather
    than a wall-clock timer) keeps output identical across reruns and
    keeps this module free of real-time reads.
    """

    def __init__(self, stream: IO[str], *, refresh_every: int = 200) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.stream = stream
        self.refresh_every = refresh_every
        self._seen = 0
        self._open: dict[str, int] = {}
        self._closed: dict[str, int] = {}
        self._counters: dict[str, float] = {}
        self._latest_t = 0.0

    def write(self, event: TraceEvent) -> None:
        """Fold the event into the tallies; render every Nth event."""
        self._seen += 1
        self._latest_t = event.t
        if event.ev == "span.start" and event.phase:
            self._open[event.phase] = self._open.get(event.phase, 0) + 1
        elif event.ev == "span.end" and event.phase:
            self._open[event.phase] = max(
                0, self._open.get(event.phase, 0) - 1)
            self._closed[event.phase] = self._closed.get(event.phase, 0) + 1
        elif event.ev == "counter" and event.name:
            self._counters[event.name] = (
                self._counters.get(event.name, 0.0) + (event.value or 0.0))
        if self._seen % self.refresh_every == 0:
            self._render()

    def _render(self) -> None:
        spans = " ".join(
            f"{phase}={self._closed.get(phase, 0)}"
            + (f"(+{self._open[phase]} open)" if self._open.get(phase) else "")
            for phase in sorted(set(self._closed) | set(self._open)))
        counters = " ".join(f"{name}={self._counters[name]:g}"
                            for name in sorted(self._counters)[:4])
        self.stream.write(
            f"[trace t={self._latest_t:10.3f}] {self._seen} events"
            + (f" | {spans}" if spans else "")
            + (f" | {counters}" if counters else "") + "\n")

    def close(self) -> None:
        """Render any unrendered remainder and flush the stream."""
        if self._seen % self.refresh_every != 0:
            self._render()
        self.stream.flush()
