"""Trace sinks: JSONL export, in-memory capture, terminal dashboard.

Sinks receive already-built :class:`~repro.obs.schema.TraceEvent`
objects from a :class:`~repro.obs.tracer.Tracer`; they never read a
clock themselves (events carry their host's timestamp), so every sink
here is deterministic and REP001-clean.  The dashboard refreshes on
*event count*, not elapsed time, for the same reason.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any

from .schema import TraceEvent, encode_event


class JsonlSink:
    """Append events to a JSONL file, one sorted-key object per line.

    Sorted keys + explicit timestamps make the file byte-identical across
    reruns of the same seeded config — the property the ``--jobs 2``
    determinism test asserts.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Any | None = self.path.open("w", encoding="utf-8")

    def write(self, event: TraceEvent) -> None:
        """Append one event as a compact sorted-key JSON line."""
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        json.dump(encode_event(event), self._fh, sort_keys=True,
                  separators=(",", ":"))
        self._fh.write("\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


class MemorySink:
    """Keep events in a list — the test double and the report's feeder."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        """Keep the event object."""
        self.events.append(event)

    def encoded(self) -> list[dict[str, Any]]:
        """Every captured event in wire (dict) form."""
        return [encode_event(e) for e in self.events]


class DashboardSink:
    """A line-oriented run dashboard over any text stream.

    Every ``refresh_every`` events it prints one status line summarizing
    the run so far: host time, event count, open/closed span tallies per
    phase, and the latest counter values.  Count-based refresh (rather
    than a wall-clock timer) keeps output identical across reruns and
    keeps this module free of real-time reads.

    ``stream`` is anything with a ``write(str)`` method — stderr (the
    CLI default), an ``io.StringIO``, a socket file wrapper, a log
    adapter; ``flush`` is optional and called only when present, so a
    minimal text sink works unmodified.
    """

    def __init__(self, stream: Any = None, *,
                 refresh_every: int = 200) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        if stream is None:
            import sys
            stream = sys.stderr
        if not callable(getattr(stream, "write", None)):
            raise TypeError(
                f"stream must have a write(str) method, got {stream!r}")
        self.stream = stream
        self.refresh_every = refresh_every
        self._seen = 0
        self._open: dict[str, int] = {}
        self._closed: dict[str, int] = {}
        self._counters: dict[str, float] = {}
        self._latest_t = 0.0

    def write(self, event: TraceEvent) -> None:
        """Fold the event into the tallies; render every Nth event."""
        self._seen += 1
        self._latest_t = event.t
        if event.ev == "span.start" and event.phase:
            self._open[event.phase] = self._open.get(event.phase, 0) + 1
        elif event.ev == "span.end" and event.phase:
            self._open[event.phase] = max(
                0, self._open.get(event.phase, 0) - 1)
            self._closed[event.phase] = self._closed.get(event.phase, 0) + 1
        elif event.ev == "counter" and event.name:
            self._counters[event.name] = (
                self._counters.get(event.name, 0.0) + (event.value or 0.0))
        if self._seen % self.refresh_every == 0:
            self._render()

    def _render(self) -> None:
        spans = " ".join(
            f"{phase}={self._closed.get(phase, 0)}"
            + (f"(+{self._open[phase]} open)" if self._open.get(phase) else "")
            for phase in sorted(set(self._closed) | set(self._open)))
        counters = " ".join(f"{name}={self._counters[name]:g}"
                            for name in sorted(self._counters)[:4])
        self.stream.write(
            f"[trace t={self._latest_t:10.3f}] {self._seen} events"
            + (f" | {spans}" if spans else "")
            + (f" | {counters}" if counters else "") + "\n")

    def close(self) -> None:
        """Render any unrendered remainder and flush if the stream can."""
        if self._seen % self.refresh_every != 0:
            self._render()
        flush = getattr(self.stream, "flush", None)
        if callable(flush):
            flush()


class Subscription:
    """One subscriber's bounded event queue on a :class:`BroadcastSink`.

    Events accumulate in a deque until the subscriber drains them with
    :meth:`pop_all`; once ``maxlen`` events are waiting, further events
    are *dropped* (never blocking the emitter) and itemized in
    :attr:`dropped_by_cause` — the same accounting discipline as the
    live transport's ``dropped_by_cause``.
    """

    def __init__(self, parent: "BroadcastSink", maxlen: int) -> None:
        self._parent = parent
        self._lock = parent._lock            # shared: one fan-out order
        self.maxlen = maxlen
        self._queue: deque[Any] = deque()
        self.closed = False
        #: Itemized losses: ``overflow`` (queue full) / ``closed``
        #: (event arrived after :meth:`close`).
        self.dropped_by_cause: dict[str, int] = {}

    @property
    def dropped(self) -> int:
        """Total events this subscriber lost, over all causes."""
        return sum(self.dropped_by_cause.values())

    def _offer(self, item: Any) -> None:
        """Enqueue under the parent's lock, or account for the drop."""
        if self.closed:
            cause = "closed"
        elif len(self._queue) >= self.maxlen:
            cause = "overflow"
        else:
            self._queue.append(item)
            return
        self.dropped_by_cause[cause] = \
            self.dropped_by_cause.get(cause, 0) + 1

    def pop_all(self) -> list[Any]:
        """Drain every waiting event, oldest first (non-blocking)."""
        with self._lock:
            items = list(self._queue)
            self._queue.clear()
        return items

    def close(self) -> None:
        """Detach from the parent sink; later events count as ``closed``."""
        self._parent.unsubscribe(self)


class BroadcastSink:
    """Thread-safe fan-out sink: one event stream, many subscribers.

    Two subscriber shapes, attachable and detachable *mid-run*:

    * **push** — any sink object (:class:`JsonlSink`,
      :class:`DashboardSink`, :class:`MemorySink`): its ``write(event)``
      runs inline under the fan-out lock, so push subscribers see every
      event in emission order;
    * **pull** — a bounded :class:`Subscription` queue for consumers on
      their own schedule (the serve WebSocket streamer).  A slow
      subscriber overflows its own queue and only *its* events drop,
      itemized per cause — the emitter never blocks and the other
      subscribers never stall.

    :meth:`publish` additionally fans out *non-schema* payloads (e.g.
    ``repro.serve/1`` job-lifecycle objects) to the pull queues only;
    push sinks speak :class:`TraceEvent` and never see them.
    """

    #: Default bound on one subscriber's unconsumed-event queue.
    DEFAULT_MAXLEN = 4096

    def __init__(self, *, maxlen: int = DEFAULT_MAXLEN) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._lock = threading.Lock()
        self.maxlen = maxlen
        self._sinks: list[Any] = []
        self._subs: list[Subscription] = []
        self.events_seen = 0

    # -- subscriber management (any thread, any time) -------------------

    def add_sink(self, sink: Any) -> Any:
        """Attach a push subscriber; returns it for chaining."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        """Detach a push subscriber (missing sinks are ignored)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def subscribe(self, *, maxlen: int | None = None) -> Subscription:
        """Attach a bounded pull queue and return its subscription."""
        sub = Subscription(self, maxlen if maxlen is not None
                           else self.maxlen)
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a pull subscriber; its queue keeps what it already has.

        The subscription stays registered (its queue is frozen, so it
        costs nothing) and later events are *counted* against it under
        the ``closed`` cause — so a consumer that detached early can
        still report exactly how much of the stream it missed.  The
        registration is released when the sink itself closes.
        """
        with self._lock:
            sub.closed = True

    # -- the sink surface ----------------------------------------------

    def write(self, event: TraceEvent) -> None:
        """Fan one schema event out to every subscriber, in order."""
        with self._lock:
            self.events_seen += 1
            for sink in self._sinks:
                sink.write(event)
            for sub in self._subs:
                sub._offer(event)

    def publish(self, payload: Any) -> None:
        """Fan a non-schema payload out to the pull queues only."""
        with self._lock:
            for sub in self._subs:
                sub._offer(payload)

    def close(self) -> None:
        """Close every push sink that can close; detach all pull queues."""
        with self._lock:
            sinks, self._sinks = self._sinks, []
            subs, self._subs = self._subs, []
            for sub in subs:
                sub.closed = True
        for sink in sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()
