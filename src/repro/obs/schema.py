"""The versioned trace-event schema shared by every host.

One event vocabulary covers the simulator (``repro.core.host`` via the
DES bridge), the live runtime (``repro.live.host``) and the harness
(sweeps, benchmarks): an event is a flat JSON object with a schema
version, an event type, the emitting host kind, a process id and a
host-clock timestamp, plus type-specific fields.  Everything a sink
writes and everything ``repro trace report`` reads round-trips through
:func:`encode_event` / :func:`decode_event`, and
:func:`validate_event` rejects unknown event types, unknown span
phases, missing fields and version skew — the CI trace-smoke job fails
a run on the first invalid event.

Span taxonomy (the protocol phases of the paper):

==============  ==============================================================
``run``         one whole execution (experiment or live run)
``tentative``   tentative-take → finalization of one ``C_{i,k}`` at one pid
``round``       a global checkpoint round (CK_BGN/CK_REQ/CK_END traffic;
                derived per-csn across pids by the report)
``finalize``    the finalize/flush action itself (storage write of CT+log)
``flush``       one stable-storage write (arrive → finish)
``recovery``    crash → rolled-back-and-reconnected (live supervisor span)
==============  ==============================================================

The same module also defines the **benchmark payload envelope**
(``repro.bench/1``): ``repro bench`` and ``repro live bench`` both emit
``{schema, bench, ok, config, metrics, tracing, ...}`` where ``metrics``
is a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` — one shape, two
benchmarks, validated by :func:`validate_bench_payload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Bump on any incompatible event-shape change; decoders reject other
#: versions rather than guessing.
SCHEMA_VERSION = 1

#: The benchmark payload envelope identifier (see module docstring).
BENCH_SCHEMA = "repro.bench/1"

#: Every legal event type.  ``span.start``/``span.end`` bracket a phase,
#: ``point`` is an instantaneous protocol occurrence, ``counter`` is a
#: single metric increment, ``metrics`` carries a full registry snapshot,
#: ``profile`` carries profiling samples (events/sec, heap size, loop lag).
EVENT_TYPES = ("span.start", "span.end", "point", "counter", "metrics",
               "profile")

#: The span taxonomy (see module docstring).
PHASES = ("run", "tentative", "round", "finalize", "flush", "recovery")

#: Host kinds an event can originate from.
HOSTS = ("des", "live", "harness")

#: The ``point`` name vocabulary — every instantaneous protocol
#: occurrence any host emits.  REP108 checks both directions statically:
#: every ``tracer.point(...)`` emission in the tree must be listed here
#: (or match a prefix below), and every name here must have a live
#: emission site — so reports and dashboards filtering by name can trust
#: the list.  ``validate_event`` deliberately does *not* enforce it at
#: runtime: third-party sinks may extend the vocabulary, the static
#: check is about *this* tree's emitters.
POINT_NAMES = (
    # protocol control traffic and checkpoint actions
    "ctl.send", "ctl.recv", "ckpt.rollback", "ckpt.anomaly",
    # injected faults (see repro.chaos)
    "chaos.drop", "chaos.duplicate", "chaos.delay", "chaos.reorder",
    "chaos.partition", "chaos.storage", "chaos.heal", "chaos.cell",
    "partition.begin", "partition.heal",
    # crash/recovery lifecycle
    "failure.crash", "recovery.complete",
    # live transport resilience
    "net.retry", "net.give_up",
    # harness
    "sweep.run",
)

#: Prefixes under which dynamically-composed point names may fall
#: (``f"chaos.{kind}"`` in the live injector).
POINT_NAME_PREFIXES = ("chaos.",)

#: The ``profile`` name vocabulary (see :mod:`repro.obs.profile`).
PROFILE_NAMES = ("des.engine", "live.loop_lag")

#: Fields every event must carry.
_COMMON_REQUIRED = ("v", "ev", "host", "pid", "t")

#: Extra required fields per event type.
_TYPE_REQUIRED: dict[str, tuple[str, ...]] = {
    "span.start": ("phase", "key"),
    "span.end": ("phase", "key"),
    "point": ("name",),
    "counter": ("name", "value"),
    "metrics": ("attrs",),
    "profile": ("name",),
}


class SchemaError(ValueError):
    """An event (or bench payload) does not conform to the schema."""


@dataclass(frozen=True)
class TraceEvent:
    """One schema-conformant observability event.

    ``t`` is the emitting host's own clock — simulated seconds for
    ``host="des"``, ``loop.time()`` (CLOCK_MONOTONIC) seconds for
    ``host="live"`` — never mixed within one stream.  ``key`` correlates
    a ``span.start`` with its ``span.end`` (e.g. ``"2:5"`` for pid 2,
    csn 5); ``attrs`` carries free-form JSON-safe extras.
    """

    ev: str
    host: str
    pid: int
    t: float
    phase: str | None = None
    name: str | None = None
    key: str | None = None
    value: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)


def encode_event(event: TraceEvent) -> dict[str, Any]:
    """Flatten a :class:`TraceEvent` into its versioned JSON object."""
    out: dict[str, Any] = {
        "v": SCHEMA_VERSION,
        "ev": event.ev,
        "host": event.host,
        "pid": event.pid,
        "t": event.t,
    }
    if event.phase is not None:
        out["phase"] = event.phase
    if event.name is not None:
        out["name"] = event.name
    if event.key is not None:
        out["key"] = event.key
    if event.value is not None:
        out["value"] = event.value
    if event.attrs:
        out["attrs"] = dict(event.attrs)
    return out


def validate_event(data: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a legal event."""
    if not isinstance(data, Mapping):
        raise SchemaError(f"event must be an object, got {type(data).__name__}")
    missing = [k for k in _COMMON_REQUIRED if k not in data]
    if missing:
        raise SchemaError(f"event missing required fields {missing}: {data!r}")
    if data["v"] != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema version {data['v']!r} "
            f"(this reader speaks {SCHEMA_VERSION})")
    ev = data["ev"]
    if ev not in EVENT_TYPES:
        raise SchemaError(f"unknown event type {ev!r}; "
                          f"known: {sorted(EVENT_TYPES)}")
    if data["host"] not in HOSTS:
        raise SchemaError(f"unknown host kind {data['host']!r}; "
                          f"known: {sorted(HOSTS)}")
    if not isinstance(data["pid"], int) or isinstance(data["pid"], bool):
        raise SchemaError(f"pid must be an int, got {data['pid']!r}")
    if not isinstance(data["t"], (int, float)) or isinstance(data["t"], bool):
        raise SchemaError(f"t must be a number, got {data['t']!r}")
    missing = [k for k in _TYPE_REQUIRED[ev] if k not in data]
    if missing:
        raise SchemaError(f"{ev} event missing fields {missing}: {data!r}")
    phase = data.get("phase")
    if phase is not None and phase not in PHASES:
        raise SchemaError(f"unknown span phase {phase!r}; "
                          f"known: {sorted(PHASES)}")
    if ev == "counter" and not isinstance(data["value"], (int, float)):
        raise SchemaError(f"counter value must be a number: {data!r}")
    attrs = data.get("attrs", {})
    if not isinstance(attrs, Mapping):
        raise SchemaError(f"attrs must be an object, got {attrs!r}")


def decode_event(data: Mapping[str, Any]) -> TraceEvent:
    """Validate and rebuild a :class:`TraceEvent` from its JSON object."""
    validate_event(data)
    return TraceEvent(
        ev=data["ev"], host=data["host"], pid=data["pid"],
        t=float(data["t"]), phase=data.get("phase"), name=data.get("name"),
        key=data.get("key"),
        value=(None if data.get("value") is None else float(data["value"])),
        attrs=dict(data.get("attrs", {})))


# --------------------------------------------------------------------------
# benchmark payload envelope
# --------------------------------------------------------------------------

#: Top-level keys every BENCH_*.json must carry.
_BENCH_REQUIRED = ("schema", "bench", "ok", "config", "metrics", "tracing")

#: Required keys of one histogram summary in a metrics snapshot.
_HIST_REQUIRED = ("count", "sum", "min", "max", "mean")


def validate_metrics_snapshot(snapshot: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``snapshot`` is a legal
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` payload."""
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise SchemaError(f"metrics snapshot missing {section!r}")
        if not isinstance(snapshot[section], Mapping):
            raise SchemaError(f"metrics {section} must be an object")
    for name in sorted(snapshot["counters"]):
        v = snapshot["counters"][name]
        if not isinstance(v, (int, float)):
            raise SchemaError(f"counter {name!r} must be a number, got {v!r}")
    for name in sorted(snapshot["gauges"]):
        v = snapshot["gauges"][name]
        if not isinstance(v, (int, float)):
            raise SchemaError(f"gauge {name!r} must be a number, got {v!r}")
    for name in sorted(snapshot["histograms"]):
        h = snapshot["histograms"][name]
        if not isinstance(h, Mapping):
            raise SchemaError(f"histogram {name!r} must be an object")
        missing = [k for k in _HIST_REQUIRED if k not in h]
        if missing:
            raise SchemaError(f"histogram {name!r} missing {missing}")


def validate_bench_payload(payload: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``payload`` is a legal
    ``repro.bench/1`` benchmark envelope (both BENCH files share it)."""
    if not isinstance(payload, Mapping):
        raise SchemaError("bench payload must be an object")
    missing = [k for k in _BENCH_REQUIRED if k not in payload]
    if missing:
        raise SchemaError(f"bench payload missing required keys {missing}")
    if payload["schema"] != BENCH_SCHEMA:
        raise SchemaError(f"unknown bench schema {payload['schema']!r} "
                          f"(this reader speaks {BENCH_SCHEMA})")
    if not isinstance(payload["bench"], str):
        raise SchemaError("bench name must be a string")
    if not isinstance(payload["ok"], bool):
        raise SchemaError("ok must be a bool")
    if not isinstance(payload["config"], Mapping):
        raise SchemaError("config must be an object")
    validate_metrics_snapshot(payload["metrics"])
    tracing = payload["tracing"]
    if not isinstance(tracing, Mapping):
        raise SchemaError("tracing must be an object")
    for k in ("baseline_seconds", "traced_seconds", "overhead_frac"):
        if k not in tracing:
            raise SchemaError(f"tracing section missing {k!r}")
        if tracing[k] is not None and not isinstance(
                tracing[k], (int, float)):
            raise SchemaError(f"tracing.{k} must be a number or null")
