"""ASCII space-time diagrams.

The paper explains its algorithm with space-time diagrams (Figures 1, 2,
5): one horizontal line per process, checkpoints and message events marked
along simulated time.  :func:`render_spacetime` reconstructs that view from
a simulation trace, so any run — not just the scripted figures — can be
eyeballed:

::

    t=      0.0 ........................................ 24.0
    P0  ----C--------------------------------F----------
    P1  ------------C---------------F--------------------
    P2  ----------------C------F--------------------------
    P3  ----------------C--------------F------------------

Marks (later marks overwrite earlier ones in the same column; uppercase
protocol events take precedence over message dots):

* ``C`` — tentative checkpoint taken (``ckpt.tentative``)
* ``F`` — checkpoint finalized (``ckpt.finalize``)
* ``R`` — rollback (``ckpt.rollback``)
* ``X`` — crash (``failure.crash``)
* ``s`` / ``r`` — application message send / receive
* ``b`` / ``q`` / ``e`` — control send: CK_BGN / CK_REQ(+markers/tokens) /
  CK_END

:func:`message_arrows` complements the diagram with a send→deliver listing
(who sent what to whom, when), optionally labelled with scenario tags.
"""

from __future__ import annotations

from ..des.trace import TraceRecorder

#: (trace kind, optional payload predicate) -> mark, in increasing priority.
_MARKS: list[tuple[str, str]] = [
    ("msg.send", "s"),
    ("msg.deliver", "r"),
    ("ctl.send", "q"),
    ("ckpt.tentative", "C"),
    ("ckpt.finalize", "F"),
    ("ckpt.rollback", "R"),
    ("failure.crash", "X"),
]
_PRIORITY = {mark: i for i, (_, mark) in enumerate(_MARKS)}


def _mark_for(rec) -> str | None:
    if rec.kind == "ctl.send":
        ctype = rec.data.get("ctype", "")
        if ctype == "CK_BGN":
            return "b"
        if ctype == "CK_END":
            return "e"
        return "q"
    for kind, mark in _MARKS:
        if rec.kind == kind:
            return mark
    return None


def render_spacetime(trace: TraceRecorder, n: int, *,
                     t0: float | None = None, t1: float | None = None,
                     width: int = 72) -> str:
    """Render one line per process over ``[t0, t1]`` scaled to ``width``.

    Defaults: the full traced time range.  Returns a multi-line string.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    events = [rec for rec in trace
              if rec.process >= 0 and _mark_for(rec) is not None]
    if not events:
        return "(no events)"
    lo = t0 if t0 is not None else min(r.time for r in events)
    hi = t1 if t1 is not None else max(r.time for r in events)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    rows = [["-"] * width for _ in range(n)]
    priority = [[-1] * width for _ in range(n)]
    # Priority of 'b'/'e' equals 'q' (control sends).
    prio = dict(_PRIORITY)
    prio["b"] = prio["e"] = prio["q"]

    for rec in events:
        if rec.process >= n or not (lo <= rec.time <= hi):
            continue
        mark = _mark_for(rec)
        col = min(int((rec.time - lo) / span * (width - 1)), width - 1)
        if prio[mark] > priority[rec.process][col]:
            rows[rec.process][col] = mark
            priority[rec.process][col] = prio[mark]

    header = f"t=  {lo:>8.1f} " + "." * max(width - 22, 1) + f" {hi:>8.1f}"
    lines = [header]
    for pid in range(n):
        lines.append(f"P{pid:<2d} " + "".join(rows[pid]))
    lines.append("marks: C=tentative F=finalize R=rollback X=crash "
                 "s/r=app send/recv b/q/e=ctl")
    return "\n".join(lines)


def message_arrows(trace: TraceRecorder,
                   tags: dict[str, int] | None = None,
                   kind: str = "app") -> list[str]:
    """One ``P_src --label--> P_dst [send → deliver]`` line per message.

    ``tags`` (scenario tag -> uid) labels messages by their paper names;
    unlabelled messages use ``#uid``.  Undelivered messages show ``→ ?``.
    """
    uid_to_tag = {uid: tag for tag, uid in (tags or {}).items()}
    sends: dict[int, tuple[int, int, float]] = {}
    delivers: dict[int, float] = {}
    for rec in trace:
        if rec.kind == "msg.send" and rec.data.get("kind") == kind:
            sends[rec.data["uid"]] = (rec.process, rec.data["dst"], rec.time)
        elif rec.kind == "msg.deliver" and rec.data.get("kind") == kind:
            delivers[rec.data["uid"]] = rec.time
    out = []
    for uid, (src, dst, st) in sorted(sends.items(),
                                      key=lambda kv: kv[1][2]):
        label = uid_to_tag.get(uid, f"#{uid}")
        dt = delivers.get(uid)
        arrival = f"{dt:.2f}" if dt is not None else "?"
        out.append(f"P{src} --{label}--> P{dst}  [{st:.2f} -> {arrival}]")
    return out
