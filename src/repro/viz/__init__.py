"""ASCII visualization of simulation runs (space-time diagrams)."""

from .spacetime import message_arrows, render_spacetime

__all__ = ["message_arrows", "render_spacetime"]
