"""Command-line interface.

Subcommands mirroring the library's main entry points::

    repro run      --protocol optimistic --n 12 --horizon 300
    repro compare  --protocols optimistic,chandy-lamport --n 12 --jobs 4
    repro sweep    --param n --values 4,8,16 --metric peak_pending_writers
    repro figures  [1|2|5|all]
    repro recover  --fail-time 250 --jobs 4
    repro bench    [executor|live|des-scale] --jobs 4
    repro verify   [--lint] [--model-check] [--format json]
    repro live     run|crash-test --n 4 --transport tcp

Every subcommand prints the same ASCII tables the benchmarks produce, so
the CLI is a thin, scriptable veneer over :mod:`repro.harness`; ``verify``
fronts the :mod:`repro.verify` static-analysis engines and exits non-zero
on any finding (see docs/STATIC_ANALYSIS.md).

``live`` runs the protocol for real — wall-clock asyncio, file-backed
stable storage, optional TCP worker processes and SIGKILL crash
injection (:mod:`repro.live`) — and exits non-zero unless the journal
replay proves the run consistent (zero orphans, ≥1 finalized round).

``sweep``/``compare``/``recover`` take ``--jobs N`` (fan runs out over a
worker pool) and cache finished runs under ``.repro-cache/`` keyed by a
config hash — ``--no-cache`` disables the cache, ``--cache-dir`` moves it;
``bench`` unifies the benchmarks behind one subcommand — ``executor``
(the default target), ``live`` and ``des-scale`` — each writing its
``repro.bench/1`` envelope to ``BENCH_<target>.json`` and sharing the
exit-code contract documented in docs/API.md (``repro live bench``
survives one release as a deprecated alias of ``bench live``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from .harness import (
    DEFAULT_PROTOCOLS,
    PROTOCOLS,
    ExperimentConfig,
    ResultCache,
    bench_executor,
    compare,
    comparison_table,
    config_key,
    fig1_scenario,
    fig2_scenario,
    fig5_scenario,
    map_jobs,
    run_experiment,
    sweep,
)
from .harness.executor import DEFAULT_CACHE_DIR, JobError
from .metrics import Table, kv_block


def _add_experiment_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", "--procs", dest="n", type=int, default=8,
                   help="number of processes (alias: --procs)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--horizon", "--duration", dest="horizon", type=float,
                   default=300.0,
                   help="simulated seconds of application work "
                        "(alias: --duration)")
    p.add_argument("--interval", type=float, default=60.0,
                   help="checkpoint interval (s)")
    p.add_argument("--timeout", type=float, default=20.0,
                   help="convergence timer (s)")
    p.add_argument("--state-mb", type=float, default=16.0,
                   help="process state size (MB)")
    p.add_argument("--rate", type=float, default=1.0,
                   help="app messages per process per second")
    p.add_argument("--workload", default="uniform",
                   help="workload name (uniform/ring/client_server/"
                        "bursty/pipeline/half_silent)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip consistency verification")


def _add_executor_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for independent runs (1=serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="do not read/write the on-disk result cache")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="result cache directory")


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", action="store_true",
                   help="emit schema-versioned trace events "
                        "(see docs/OBSERVABILITY.md)")
    p.add_argument("--trace-file", default=None,
                   help="trace JSONL output path (implies --trace; "
                        "default: trace.jsonl)")


def _tracer_from(args: argparse.Namespace, *, host: str) -> "Any | None":
    """Build the run's Tracer from ``--trace``/``--trace-file`` (or None).

    None — not a disabled tracer — is the fully-off path: nothing is
    constructed and nothing subscribes to the run.
    """
    if not (args.trace or args.trace_file):
        return None
    from .obs import DashboardSink, JsonlSink, Tracer
    sinks: list[Any] = [JsonlSink(args.trace_file or "trace.jsonl")]
    if getattr(args, "trace_dashboard", False):
        sinks.append(DashboardSink(sys.stderr))
    return Tracer(sinks, host=host)


def _cache_from(args: argparse.Namespace) -> ResultCache | None:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _parse_value(raw: str) -> int | float | str:
    """Sweep value literal: int, else float, else bare string.

    String fallback covers string-valued params (``--param flush
    --values immediate,opportunistic``); going through ``int`` first
    keeps ``-3`` an int, not a float.
    """
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def _parse_protocols(raw: str) -> tuple[str, ...] | None:
    """Split and validate a ``--protocols`` list; None (+stderr) if bad."""
    protocols = tuple(p for p in raw.split(",") if p)
    unknown = [p for p in protocols if p not in PROTOCOLS]
    if unknown:
        print(f"unknown protocols: {unknown}; "
              f"choices: {sorted(PROTOCOLS)}", file=sys.stderr)
        return None
    return protocols


def _config_from(args: argparse.Namespace,
                 protocol: str = "optimistic") -> ExperimentConfig:
    workload_kwargs = {}
    if args.workload in ("uniform", "client_server"):
        workload_kwargs["rate"] = args.rate
    return ExperimentConfig(
        protocol=protocol, n=args.n, seed=args.seed, horizon=args.horizon,
        checkpoint_interval=args.interval, timeout=args.timeout,
        state_bytes=int(args.state_mb * 1_000_000),
        workload=args.workload, workload_kwargs=workload_kwargs,
        verify=not args.no_verify)


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: one experiment, metrics or full report.

    Exits 1 whenever verification found an orphaned global checkpoint —
    the ``--report`` and ``--format json`` branches included, so
    scripted runs can't mistake an inconsistent run for success.
    """
    cfg = _config_from(args, protocol=args.protocol)
    tracer = _tracer_from(args, host="des")
    try:
        # Only pass the kwarg when tracing: run_experiment stand-ins in
        # tests (and any third-party runner) need not know about it.
        res = (run_experiment(cfg, tracer=tracer) if tracer is not None
               else run_experiment(cfg))
    finally:
        if tracer is not None:
            tracer.close()
    bad = {k: v for k, v in res.orphans.items() if v}
    if args.format == "json":
        print(json.dumps(res.as_dict(), indent=2, sort_keys=True))
    elif args.report:
        from .metrics import render_run_report
        print(render_run_report(res))
    else:
        d = res.metrics.as_dict()
        print(kv_block(f"run: {args.protocol}", d))
        if res.orphans:
            print(f"\nconsistency: {len(res.orphans)} global checkpoints "
                  f"verified, " + ("all consistent" if not bad
                                   else f"ORPHANS {bad}"))
    return 1 if bad else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: protocol matrix over one workload."""
    protocols = _parse_protocols(args.protocols)
    if protocols is None:
        return 2
    cfg = _config_from(args)
    results = compare(cfg, protocols=protocols, jobs=args.jobs,
                      cache=_cache_from(args))
    print(comparison_table(
        results,
        columns=("peak_pending_writers", "mean_wait", "max_wait",
                 "ctl_messages", "piggyback_bytes", "checkpoints",
                 "rounds_completed", "blocked_time"),
        title=f"protocol comparison (n={cfg.n}, seed={cfg.seed})").render())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: one config parameter across values.

    With ``--trace``, per-run ``point`` events plus a final deterministic
    :class:`~repro.obs.MetricsRegistry` snapshot are emitted *after* the
    batch, in input order — so the trace file is byte-identical whatever
    ``--jobs`` interleaving produced the results.
    """
    protocols = _parse_protocols(args.protocols)
    if protocols is None:
        return 2
    values = [_parse_value(raw) for raw in args.values.split(",")]
    cfg = _config_from(args)
    result = sweep(cfg, args.param, values, protocols=protocols,
                   jobs=args.jobs, cache=_cache_from(args))
    tracer = _tracer_from(args, host="harness")
    if tracer is not None:
        try:
            _trace_sweep(tracer, result, args.param, args.metric)
        finally:
            tracer.close()
    print(result.table(args.metric,
                       title=f"{args.metric} vs {args.param}").render())
    return 0


def _trace_sweep(tracer: "Any", result: "Any", param: str,
                 metric: str) -> None:
    """Emit one harness-level event stream for a finished sweep."""
    from .obs import MetricsRegistry
    registry = MetricsRegistry()
    for pt in result.points:
        for name in sorted(pt.results):
            out = pt.results[name]
            row = out.metrics.as_dict()
            value = row.get(metric)
            # t is the run's own makespan (simulated seconds) — the only
            # deterministic clock a harness-level event can carry.
            t = float(row.get("makespan", 0.0))
            tracer.point("sweep.run", t, protocol=name,
                         **{param: pt.value, metric: value})
            registry.counter("sweep.runs").inc()
            if out.consistent:
                registry.counter("sweep.consistent").inc()
            if isinstance(value, (int, float)):
                registry.histogram(f"sweep.{metric}").observe(float(value))
    tracer.metrics_snapshot(registry.snapshot(), 0.0)


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: replay the paper's figures."""
    which = args.figure
    if which in ("1", "all"):
        r = fig1_scenario()
        print("Figure 1: S_1 orphans:", r.extra["orphans_s1"] or "none")
        print("Figure 1: S_2 orphans:",
              [str(o) for o in r.extra["orphans_s2"]])
    if which in ("2", "all"):
        r = fig2_scenario()
        t = Table("process", "CT", "finalized", "reason",
                  title="Figure 2 — basic algorithm")
        for pid in range(4):
            fc = r.runtime.hosts[pid].finalized[1]
            t.add_row(f"P{pid}", fc.tentative.taken_at, fc.finalized_at,
                      fc.reason)
        print(t.render())
    if which in ("5", "all"):
        r = fig5_scenario()
        t = Table("t", "message", "from", "to",
                  title="Figure 5 — control messages")
        for rec in r.sim.trace.filter("ctl.send"):
            t.add_row(rec.time, rec.data["ctype"], f"P{rec.process}",
                      f"P{rec.data['dst']}")
        print(t.render())
    return 0


#: Protocol order of the ``repro recover`` table.
RECOVER_PROTOCOLS = ("optimistic", "chandy-lamport", "koo-toueg",
                     "staggered", "plank-staggered", "cic-bcs",
                     "quasi-sync-ms", "uncoordinated")


def _recover_row(item: tuple[ExperimentConfig, float]) -> dict[str, Any]:
    """Worker body: run one protocol, reduce to its recovery-table row.

    Top-level (spawn-picklable) so ``repro recover --jobs N`` can fan the
    per-protocol runs out; the live runtime the recovery analysis needs
    never leaves the worker — only the JSON-safe row does.
    """
    from .recovery import (
        recover_cic,
        recover_coordinated,
        recover_optimistic,
        recover_quasi_sync_ms,
        recover_uncoordinated,
    )
    cfg, fail_time = item
    res = run_experiment(cfg)
    if cfg.protocol == "optimistic":
        out = recover_optimistic(res.runtime, fail_time)
    elif cfg.protocol == "cic-bcs":
        out = recover_cic(res.runtime, fail_time)
    elif cfg.protocol == "quasi-sync-ms":
        out = recover_quasi_sync_ms(res.runtime, fail_time)
    elif cfg.protocol == "uncoordinated":
        out = recover_uncoordinated(res.runtime, res.sim.trace, fail_time)
    else:
        out = recover_coordinated(res.runtime, fail_time, cfg.protocol)
    return {"protocol": cfg.protocol, "seq": out.seq,
            "total_lost_work": out.total_lost_work,
            "max_lost_work": out.max_lost_work}


def cmd_recover(args: argparse.Namespace) -> int:
    """``repro recover``: hypothetical-failure recovery table."""
    cache = _cache_from(args)
    rows: dict[str, dict[str, Any]] = {}
    pending: list[tuple[str, ExperimentConfig, str]] = []
    for protocol in RECOVER_PROTOCOLS:
        cfg = _config_from(args, protocol=protocol).derive(verify=False)
        key = config_key(cfg, salt=f"recover:{args.fail_time}")
        hit = cache.load_json(key) if cache is not None else None
        if hit is not None and "row" in hit:
            rows[protocol] = hit["row"]
        else:
            pending.append((protocol, cfg, key))
    outcomes = map_jobs(_recover_row,
                        [(cfg, args.fail_time) for _, cfg, _ in pending],
                        jobs=args.jobs)
    failed = False
    for (protocol, cfg, key), outcome in zip(pending, outcomes):
        if isinstance(outcome, JobError):
            print(f"recover: {protocol} failed: {outcome.error}\n"
                  f"{outcome.traceback}", file=sys.stderr)
            failed = True
            continue
        rows[protocol] = outcome
        if cache is not None:
            cache.store_json(key, {"row": outcome})
    table = Table("protocol", "recovery point", "total lost work (s)",
                  "max lost work (s)",
                  title=f"recovery after failure at t={args.fail_time}")
    for protocol in RECOVER_PROTOCOLS:
        if protocol in rows:
            row = rows[protocol]
            table.add_row(protocol, row["seq"], row["total_lost_work"],
                          row["max_lost_work"])
    print(table.render())
    return 1 if failed else 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench [executor|live|des-scale]``: the unified bench entry.

    Every target emits a ``repro.bench/1`` envelope (see docs/API.md for
    the shared exit-code contract: 0 = bench ran and its acceptance bar
    held, 1 = the bench's own acceptance bar failed, 2 = usage error).
    The default target is ``executor`` so the historical ``repro bench
    --jobs 4`` spelling keeps working unchanged.
    """
    which = args.which
    if which == "live":
        return _run_live_bench(
            out=args.out or "BENCH_live.json", n=args.n,
            transport=args.transport,
            duration=args.horizon if args.horizon is not None else 5.0,
            rate=args.rate, seed=args.seed, run_dir=args.run_dir,
            fmt=args.format)
    if which == "des-scale":
        return _run_des_scale_bench(args)
    return _run_executor_bench(args)


def _run_executor_bench(args: argparse.Namespace) -> int:
    """``repro bench executor``: serial-vs-parallel executor timing."""
    from .harness.executor import bench_configs
    n_values = [int(v) for v in (args.values or "16,24").split(",")]
    protocols = _parse_protocols(args.protocols)
    if protocols is None:
        return 2
    horizon = args.horizon if args.horizon is not None else 1200.0
    configs = bench_configs(n_values=n_values, protocols=protocols,
                            horizon=horizon, seed=args.seed,
                            repeats=args.repeats)
    payload = bench_executor(jobs=args.jobs,
                             out_path=args.out or "BENCH_executor.json",
                             configs=configs,
                             progress=not args.quiet)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(kv_block("bench: executor", {
            "runs": payload["runs"],
            "serial_seconds": payload["serial_seconds"],
            "parallel_seconds": payload["parallel_seconds"],
            "speedup": payload["speedup"],
            "trace_overhead_frac": payload["tracing"]["overhead_frac"],
            "ok": payload["ok"],
        }))
    return 0 if payload["ok"] else 1


def _run_des_scale_bench(args: argparse.Namespace) -> int:
    """``repro bench des-scale``: DES kernel throughput across system sizes.

    Runs serially regardless of ``--jobs``: the points are wall-clock
    measurements and must not contend with each other.
    """
    from .harness.des_scale import DEFAULT_NS, bench_des_scale
    ns = ([int(v) for v in args.values.split(",")] if args.values
          else list(DEFAULT_NS))
    progress = None
    if not args.quiet:
        def progress(point: dict) -> None:
            print(f"bench des-scale: n={point['n']} "
                  f"{point['events_per_sec']} events/s "
                  f"(peak heap {point['peak_heap']})", file=sys.stderr)
    payload = bench_des_scale(ns=ns, seed=args.seed,
                              out_path=args.out or "BENCH_des_scale.json",
                              repeats=args.repeats, progress=progress)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(kv_block("bench: des-scale", {
            **{f"n={p['n']} events/s": p["events_per_sec"]
               for p in payload["points"]},
            "trace_overhead_frac": payload["tracing"]["overhead_frac"],
            "ok": payload["ok"],
        }))
    return 0 if payload["ok"] else 1


def _run_live_bench(out: str, n: int, transport: str, duration: float,
                    rate: float, seed: int, run_dir: str | None,
                    fmt: str) -> int:
    """``repro bench live``: throughput + crash-recovery of the live
    runtime (shared implementation of the deprecated ``repro live
    bench`` spelling)."""
    from .live.bench import run_bench
    payload = run_bench(out, n=n, transport=transport, duration=duration,
                        rate=rate, seed=seed, run_root=run_dir)
    if fmt == "text":
        print(kv_block("bench: live", {
            "throughput_msgs_per_sec":
                payload["throughput"]["msgs_per_sec"],
            "traced_msgs_per_sec": payload["traced"]["msgs_per_sec"],
            "crash_ok": payload["crash"]["ok"],
            "ok": payload["ok"],
        }))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if payload["ok"] else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: determinism/layering lint + bounded model check.

    With no engine flag both engines run (same as ``--all``); the default
    model-check bounds are the full 3-process / 1-interval acceptance
    configuration, which takes a couple of minutes — CI-scale invocations
    pass ``--n 2`` for a sub-second exhaustive check.
    """
    # Imported here: the verify engines pull in ``ast`` walking machinery
    # that the simulation subcommands never need.
    from .core.state_machine import MachineConfig
    from .verify import ExploreConfig, explore, lint_paths

    run_both = args.all or not (args.lint or args.model_check)
    lint_runs = args.lint or run_both
    if args.paths and not lint_runs:
        # Positional paths scope the lint; with --model-check alone there
        # is nothing for them to scope — that is a usage error (exit 2).
        print("repro verify: path arguments require the lint to run "
              "(drop --model-check or add --lint)", file=sys.stderr)
        return 2
    payload: dict = {}
    ok = True

    if lint_runs:
        lint_target = args.paths if args.paths else args.path
        report = lint_paths(lint_target)
        payload["lint"] = report.as_dict()
        ok = ok and report.clean
        if report.files_checked == 0:
            # A typo'd path would otherwise "pass" by checking nothing.
            print(f"repro verify: no Python files under {lint_target!r}",
                  file=sys.stderr)
            ok = False
        if args.format == "text":
            print(report.render())

    if args.model_check or run_both:
        cfg = ExploreConfig(
            n=args.n, max_csn=args.rounds, sends_per_process=args.sends,
            timer_fires_per_csn=args.timer_fires, fifo=args.fifo,
            machine=MachineConfig(),
            drop_ck_req_forwarding=args.drop_ck_req,
            max_states=args.max_states)
        result = explore(cfg)
        payload["model_check"] = result.as_dict()
        ok = ok and result.ok
        if args.format == "text":
            print(result.render())

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    return 0 if ok else 1


def cmd_trace_report(args: argparse.Namespace) -> int:
    """``repro trace report``: per-phase latency breakdown of a trace.

    ``target`` is a trace JSONL file (``repro run --trace``) or a live
    run directory (every ``trace*.jsonl`` under it).  Exits 1 on schema
    violations or a missing trace.
    """
    from .obs import SchemaError, report_from
    try:
        report = report_from(args.target)
    except (FileNotFoundError, SchemaError) as exc:
        print(f"repro trace report: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_trace_validate(args: argparse.Namespace) -> int:
    """``repro trace validate``: schema-check every event under a target.

    Unlike ``report`` this never stops early: all violations are listed
    (the CI trace-smoke job runs this over both hosts' traces).
    """
    from .obs import SCHEMA_VERSION, validate_file
    problems = validate_file(args.target)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"repro trace validate: {len(problems)} violation(s) "
              f"in {args.target}", file=sys.stderr)
        return 1
    print(f"OK — every event under {args.target} conforms to trace "
          f"schema v{SCHEMA_VERSION}")
    return 0


def _live_config_from(args: argparse.Namespace,
                      crash_at: float | None) -> "Any":
    """Map ``repro live`` flags onto a :class:`repro.live.LiveRunConfig`."""
    from .live import LiveRunConfig
    chaos = None
    if getattr(args, "chaos_plan", None):
        from .chaos import FaultPlan
        with open(args.chaos_plan, encoding="utf-8") as fh:
            chaos = FaultPlan.from_dict(json.load(fh))
    return LiveRunConfig(
        n=args.n, transport=args.transport, duration=args.duration,
        checkpoint_interval=args.interval, timeout=args.timeout,
        workload=args.workload, rate=args.rate, msg_size=args.msg_size,
        seed=args.seed, crash_at=crash_at, crash_pid=args.crash_pid,
        run_dir=args.run_dir, trace=args.trace,
        connect_timeout=args.connect_timeout,
        connect_attempts=args.connect_attempts,
        connect_wait=args.connect_wait,
        resilience=not args.no_resilience,
        max_retries=args.max_retries, retry_base=args.retry_base,
        retry_max=args.retry_max, chaos=chaos)


def cmd_live_run(args: argparse.Namespace) -> int:
    """``repro live run``: one real execution, conformance-checked.

    Exit 0 only when the journal replay proves the run consistent (zero
    orphans on every complete S_k), at least one global checkpoint round
    finalized, and — if a crash was injected — recovery completed.
    """
    from .live import run_live
    report = run_live(_live_config_from(args, args.crash_at))
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_live_crash_test(args: argparse.Namespace) -> int:
    """``repro live crash-test``: live run with a guaranteed crash.

    Same as ``repro live run`` but a SIGKILL (TCP) / task kill (local)
    is always injected — at ``--crash-at`` or halfway by default.
    """
    from .live import run_live
    crash_at = (args.crash_at if args.crash_at is not None
                else args.duration / 2)
    report = run_live(_live_config_from(args, crash_at))
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_live_bench(args: argparse.Namespace) -> int:
    """``repro live bench``: deprecated alias of ``repro bench live``.

    Kept one release for script compatibility; warns on stderr and runs
    the same implementation (same payload, same exit codes).
    """
    print("repro live bench is deprecated; use `repro bench live`",
          file=sys.stderr)
    return _run_live_bench(out=args.out, n=args.n, transport=args.transport,
                           duration=args.duration, rate=args.rate,
                           seed=args.seed, run_dir=args.run_dir,
                           fmt=args.format)


def _add_live_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--n", "--procs", dest="n", type=int, default=4,
                   help="number of workers (alias: --procs)")
    p.add_argument("--transport", choices=("local", "tcp"), default="local",
                   help="local = asyncio tasks over queue pairs; "
                        "tcp = one OS process per worker over localhost")
    p.add_argument("--duration", type=float, default=5.0,
                   help="wall seconds of application work")
    p.add_argument("--interval", type=float, default=1.0,
                   help="checkpoint initiation interval (wall s)")
    p.add_argument("--timeout", type=float, default=0.5,
                   help="convergence timer (wall s)")
    p.add_argument("--workload", default="uniform",
                   choices=("uniform", "ring"))
    p.add_argument("--rate", type=float, default=20.0,
                   help="app messages per worker per second")
    p.add_argument("--msg-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--crash-pid", type=int, default=None,
                   help="crash victim (default: highest pid)")
    p.add_argument("--run-dir", default=None,
                   help="run artifact directory "
                        "(default: .repro-live/run-<stamp>)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--trace", action="store_true",
                   help="emit schema-versioned trace events into the run "
                        "directory (trace-P<pid>-<inc>.jsonl per worker + "
                        "trace-supervisor.jsonl)")
    p.add_argument("--connect-timeout", type=float, default=10.0,
                   help="per-attempt worker→broker connection timeout (s)")
    p.add_argument("--connect-attempts", type=int, default=5,
                   help="worker→broker connection attempts (backoff "
                        "between retries)")
    p.add_argument("--connect-wait", type=float, default=30.0,
                   help="supervisor wait for all workers to connect (s)")
    p.add_argument("--no-resilience", action="store_true",
                   help="disable the retry/ack/dedup transport layer "
                        "(repro.live.resilience)")
    p.add_argument("--max-retries", type=int, default=6,
                   help="retransmissions per unacked frame")
    p.add_argument("--retry-base", type=float, default=0.05,
                   help="first retransmission backoff (s)")
    p.add_argument("--retry-max", type=float, default=1.0,
                   help="retransmission backoff ceiling (s)")
    p.add_argument("--chaos-plan", default=None,
                   help="JSON fault plan (repro.chaos) to inject into "
                        "the run")


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: the fault × runtime conformance matrix.

    Exit 0 only when every cell is consistent (Theorem 2 held under the
    injected faults) *and* recovered (faults were injected and healed,
    rounds kept finalizing).  ``--no-retries`` is the discrimination
    mode: the live drop cell must then fail.
    """
    if args.plan is not None:
        return _chaos_replay_plan(args)
    from .chaos import DEFAULT_KINDS, run_matrix
    kinds = (tuple(k for k in args.kinds.split(",") if k)
             if args.kinds else DEFAULT_KINDS)
    runtimes = tuple(r for r in args.runtimes.split(",") if r)
    unknown_rt = [r for r in runtimes if r not in ("des", "live")]
    if unknown_rt:
        print(f"unknown runtimes: {unknown_rt}; choices: ['des', 'live']",
              file=sys.stderr)
        return 2
    tracer = _tracer_from(args, host="harness")
    try:
        report = run_matrix(
            kinds, runtimes, seed=args.seed, transport=args.transport,
            duration=args.duration, retries=not args.no_retries,
            jobs=args.jobs, run_root=args.run_root, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _chaos_replay_plan(args: argparse.Namespace) -> int:
    """``repro chaos --plan FILE``: replay one saved plan or fuzz input.

    Two file shapes are accepted: a bare :class:`FaultPlan` JSON (run
    through the standard DES conformance cell) and a full fuzz-input
    JSON with ``plan``/``schedule`` keys — e.g. a shrunk counterexample's
    ``input.json`` — which replays through the fuzz oracle, including
    its protocol ``--mutate`` if the bug needs one to reproduce.  Exit 0
    when the replay is healthy, 1 when it violates.
    """
    from .chaos import FaultPlan, run_des_cell
    try:
        payload = json.loads(Path(args.plan).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"cannot read plan file {args.plan!r}: {exc}",
              file=sys.stderr)
        return 2
    if "schedule" in payload:
        from .fuzz import FuzzInput, run_input
        inp = FuzzInput.from_dict(payload)
        inp.validate()
        outcome = run_input(inp, mutation=args.mutate)
        if args.format == "json":
            print(json.dumps(outcome, indent=2, sort_keys=True))
        else:
            verdict = ("VIOLATES: "
                       + "; ".join(f"{v['kind']} — {v['detail']}"
                                   for v in outcome["violations"])
                       if outcome["violations"] else "ok")
            print(f"fuzz input replay ({args.plan}): {verdict}")
            print(f"  rounds={outcome['rounds']}"
                  f" events={outcome['events']}"
                  f" injected={outcome['injected']}")
        return 1 if outcome["violations"] else 0
    if args.mutate is not None:
        print("--mutate needs a fuzz-input file (with a schedule), not a"
              " bare fault plan", file=sys.stderr)
        return 2
    plan = FaultPlan.from_dict(payload)
    plan.validate()
    cell = run_des_cell("plan", seed=args.seed, plan=plan,
                        cache=_cache_from(args)
                        if hasattr(args, "cache_dir") else None)
    ok = cell["consistent"] and not cell["truncated"]
    if args.format == "json":
        print(json.dumps(cell, indent=2, sort_keys=True))
    else:
        status = "ok" if ok else "VIOLATES"
        print(f"plan replay ({args.plan}): {status}"
              f" consistent={cell['consistent']}"
              f" truncated={cell['truncated']}"
              f" injected={cell['injected']}")
    return 0 if ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: a coverage-guided fault-plan fuzzing campaign.

    Exit codes: 0 — campaign completed with no violation; 1 — a
    violation was found (shrunk counterexample written under
    ``<dir>/crashes/``); 2 — usage error.
    """
    if args.budget is None and args.iterations is None:
        args.budget = 60.0
    if args.budget is not None and args.budget <= 0:
        print("--budget must be positive", file=sys.stderr)
        return 2
    if args.iterations is not None and args.iterations <= 0:
        print("--iterations must be positive", file=sys.stderr)
        return 2
    from .fuzz import run_campaign

    def on_stats(line: str) -> None:
        print(line, file=sys.stderr)

    report = run_campaign(
        budget_s=args.budget, max_execs=args.iterations, jobs=args.jobs,
        seed=args.seed, mutation=args.mutate, root=args.dir,
        shrink=not args.no_shrink, resume=args.resume, on_stats=on_stats)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"fuzz campaign: {report.executions} executions in"
              f" {report.elapsed_s:.1f}s, corpus={report.corpus_size},"
              f" coverage={report.coverage_edges} edges,"
              f" errors={report.errors}")
        if report.counterexample is not None:
            cx = report.counterexample
            kinds = ", ".join(v["kind"] for v in cx["violations"])
            print(f"VIOLATION ({kinds}): counterexample with"
                  f" {cx['events']} events after {cx['shrink_runs']}"
                  f" shrink runs")
            print(f"  bundle: {cx['crash_dir']}")
            print(f"  replay: repro chaos --plan"
                  f" {cx['crash_dir']}/input.json"
                  + (f" --mutate {report.mutation}"
                     if report.mutation else ""))
        else:
            print("no violations found")
    return 1 if report.found else 0


def _parse_server(raw: str) -> tuple[str, int] | None:
    """Split a ``host:port`` address; None (+stderr) if malformed."""
    host, _, port = raw.rpartition(":")
    if not host or not port.isdigit():
        print(f"bad --server address {raw!r} (expected host:port)",
              file=sys.stderr)
        return None
    return host, int(port)


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the long-lived multi-client job server.

    Runs until SIGTERM/SIGINT, then drains gracefully: running jobs are
    checkpoint-cancelled through their cooperative hooks, queued jobs
    stay persisted under the state directory for the next start, and
    the process exits 0.
    """
    from .serve import JobStore, Scheduler, serve_forever
    store = JobStore(args.state_dir)
    scheduler = Scheduler(store, jobs=args.jobs,
                          cache_dir=args.cache_dir)
    print(f"repro serve: listening on {args.host}:{args.port} "
          f"(jobs={args.jobs}, state={args.state_dir})", file=sys.stderr)
    return serve_forever(scheduler, host=args.host, port=args.port)


def _load_spec(raw: str | None) -> dict:
    """A ``--spec`` value: inline JSON object or ``@file`` indirection."""
    if not raw:
        return {}
    text = raw
    if raw.startswith("@"):
        with open(raw[1:], encoding="utf-8") as fh:
            text = fh.read()
    spec = json.loads(text)
    if not isinstance(spec, dict):
        raise ValueError(f"spec must be a JSON object, got "
                         f"{type(spec).__name__}")
    return spec


def _stream_job(client: "Any", job_id: str, *, quiet: bool,
                trace_file: str | None) -> int:
    """Tail one job's event stream to completion; returns its exit code.

    With ``trace_file``, the obs events embedded in ``trace`` wrappers
    are unwrapped into a JSONL file that ``repro trace validate``
    accepts unchanged.
    """
    from .serve import exit_code_for
    final: str | None = None
    inner: list[dict] = []
    for event in client.watch(job_id):
        if not quiet:
            print(json.dumps(event, sort_keys=True))
        if event.get("ev") == "trace":
            inner.append(event["event"])
        elif event.get("ev") == "job.state":
            state = event.get("state")
            if state in ("done", "failed", "cancelled"):
                final = state
    if trace_file:
        with open(trace_file, "w", encoding="utf-8") as fh:
            for obs_event in inner:
                fh.write(json.dumps(obs_event, sort_keys=True) + "\n")
    if final is None:
        print(f"repro: job {job_id} stream ended without a terminal "
              f"state", file=sys.stderr)
        return 1
    return exit_code_for(final)


def cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: enqueue one job on a running server.

    Prints the job id; with ``--wait`` it tails the event stream and the
    exit code mirrors the job outcome (0 done / 1 failed or cancelled);
    a spec the server's schema rejects is a usage error (exit 2).
    """
    from .serve import (
        SERVE_SCHEMA,
        ProtocolError,
        ServeClient,
        ServeClientError,
        validate_job,
    )
    addr = _parse_server(args.server)
    if addr is None:
        return 2
    try:
        spec = _load_spec(args.spec)
        payload = {"schema": SERVE_SCHEMA, "kind": args.kind,
                   "spec": spec, "priority": args.priority}
        validate_job(payload)          # fail fast, before any connection
    except (OSError, ValueError, ProtocolError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(*addr)
    try:
        record = client.submit(args.kind, spec, priority=args.priority)
    except ServeClientError as exc:
        print(f"repro submit: server rejected the job: {exc}",
              file=sys.stderr)
        return 2 if exc.status == 400 else 1
    except OSError as exc:
        print(f"repro submit: cannot reach {args.server}: {exc}",
              file=sys.stderr)
        return 2
    print(record["id"])
    if not args.wait:
        return 0
    return _stream_job(client, record["id"], quiet=args.quiet,
                       trace_file=args.trace_file)


def cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: tail one job's event stream to completion."""
    from .serve import ServeClient, ServeClientError
    addr = _parse_server(args.server)
    if addr is None:
        return 2
    client = ServeClient(*addr)
    try:
        return _stream_job(client, args.job, quiet=args.quiet,
                           trace_file=args.trace_file)
    except ServeClientError as exc:
        print(f"repro watch: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro watch: cannot reach {args.server}: {exc}",
              file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimistic checkpointing (Jiang & Manivannan 2007) — "
                    "simulation experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one protocol, print its metrics")
    p.add_argument("--protocol", default="optimistic",
                   choices=sorted(PROTOCOLS))
    p.add_argument("--report", action="store_true",
                   help="print a full one-page report incl. a space-time "
                        "diagram")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="json = the RunOutcome as_dict() record")
    p.add_argument("--trace-dashboard", action="store_true",
                   help="with --trace: stream an in-terminal run "
                        "dashboard to stderr")
    _add_experiment_args(p)
    _add_trace_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="run several protocols on one workload")
    p.add_argument("--protocols", default=",".join(DEFAULT_PROTOCOLS))
    _add_experiment_args(p)
    _add_executor_args(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("sweep", help="sweep one config parameter")
    p.add_argument("--param", required=True,
                   help="config field, e.g. n or workload_kwargs.rate")
    p.add_argument("--values", required=True,
                   help="comma-separated values (int/float/string)")
    p.add_argument("--metric", default="peak_pending_writers")
    p.add_argument("--protocols", default="optimistic")
    _add_experiment_args(p)
    _add_executor_args(p)
    _add_trace_args(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("figures", help="replay the paper's figures")
    p.add_argument("figure", nargs="?", default="all",
                   choices=("1", "2", "5", "all"))
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("recover", help="hypothetical-failure recovery table")
    p.add_argument("--fail-time", type=float, default=250.0)
    _add_experiment_args(p)
    _add_executor_args(p)
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser(
        "bench",
        help="unified benchmarks: executor (default) | live | des-scale, "
             "each emitting a repro.bench/1 BENCH_*.json")
    p.add_argument("which", nargs="?", default="executor",
                   choices=("executor", "live", "des-scale"),
                   help="bench target (default: executor, so the legacy "
                        "`repro bench --jobs 4` spelling is unchanged)")
    # Shared flags (every target).
    p.add_argument("--out", default=None,
                   help="output JSON path (default: BENCH_<target>.json)")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker processes for the executor's parallel "
                        "pass; des-scale and live always run serially "
                        "(wall-clock points must not contend)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=2,
                   help="repeats per point (executor: seed repeats; "
                        "des-scale: best-of walls)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress on stderr")
    p.add_argument("--format", choices=("text", "json"), default="json")
    # executor + des-scale flags.
    p.add_argument("--values", "--procs", dest="values", default=None,
                   help="comma-separated n values (alias: --procs; "
                        "default: 16,24 for executor, 64,256,1024 for "
                        "des-scale)")
    p.add_argument("--protocols", default="optimistic,chandy-lamport",
                   help="executor only: protocols of the fixed sweep")
    p.add_argument("--horizon", "--duration", dest="horizon", type=float,
                   default=None,
                   help="simulated seconds per executor run (default "
                        "1200) / wall seconds of the live workload "
                        "(default 5; alias: --duration)")
    # live flags.
    p.add_argument("-n", "--n", dest="n", type=int, default=4,
                   help="live only: number of workers")
    p.add_argument("--transport", choices=("local", "tcp"), default="local",
                   help="live only: worker transport (matches the "
                        "`repro live` default)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="live only: app messages per worker per second "
                        "(<=0 = uncapped, measuring the wire)")
    p.add_argument("--run-dir", default=None,
                   help="live only: run artifact directory")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "verify",
        help="static protocol verification: determinism/layering lint + "
             "bounded model check of the optimistic state machine")
    p.add_argument("--all", action="store_true",
                   help="run both engines at the acceptance bounds "
                        "(the default when no engine flag is given)")
    p.add_argument("--lint", action="store_true",
                   help="run only the AST lint")
    p.add_argument("--model-check", action="store_true",
                   help="run only the bounded model checker")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="directory trees to lint (default: src/repro); "
                        "several trees are linted as one file set, so "
                        "cross-file rules see their union")
    p.add_argument("--path", default="src/repro",
                   help="directory tree to lint (legacy spelling; "
                        "positional PATHs take precedence)")
    p.add_argument("--n", type=int, default=3,
                   help="model: number of processes")
    p.add_argument("--rounds", type=int, default=1,
                   help="model: checkpoint rounds (intervals)")
    p.add_argument("--sends", type=int, default=1,
                   help="model: app messages per process")
    p.add_argument("--timer-fires", type=int, default=2,
                   help="model: timer expiries per process per round")
    p.add_argument("--fifo", action="store_true",
                   help="model: per-channel FIFO delivery "
                        "(default: arbitrary reordering)")
    p.add_argument("--max-states", type=int, default=2_000_000,
                   help="model: abort (as incomplete) beyond this many "
                        "states")
    p.add_argument("--drop-ck-req", action="store_true",
                   help="model: fault injection — silently drop CK_REQ "
                        "forwarding (demonstrates a Theorem 1 "
                        "counterexample)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "trace",
        help="inspect schema-versioned trace streams "
             "(see docs/OBSERVABILITY.md)")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    q = trace_sub.add_parser(
        "report", help="per-phase latency/overhead breakdown of a trace")
    q.add_argument("target",
                   help="trace JSONL file or a live run directory")
    q.add_argument("--format", choices=("text", "json"), default="text")
    q.set_defaults(fn=cmd_trace_report)

    q = trace_sub.add_parser(
        "validate",
        help="schema-check every event; exit 1 on any violation")
    q.add_argument("target",
                   help="trace JSONL file or a live run directory")
    q.set_defaults(fn=cmd_trace_validate)

    p = sub.add_parser(
        "live",
        help="run the protocol for real: wall-clock asyncio runtime, "
             "TCP workers, SIGKILL crash injection (see repro.live)")
    live_sub = p.add_subparsers(dest="live_command", required=True)

    q = live_sub.add_parser("run", help="one live run, conformance-checked")
    _add_live_args(q)
    q.add_argument("--crash-at", type=float, default=None,
                   help="inject one crash this many wall seconds in")
    q.set_defaults(fn=cmd_live_run)

    q = live_sub.add_parser("crash-test",
                            help="live run with a guaranteed crash "
                                 "(default: halfway through)")
    _add_live_args(q)
    q.add_argument("--crash-at", type=float, default=None,
                   help="crash injection time (default: duration/2)")
    q.set_defaults(fn=cmd_live_crash_test)

    q = live_sub.add_parser("bench",
                            help="deprecated alias of `repro bench live` "
                                 "(warns; same payload and exit codes)")
    _add_live_args(q)
    q.add_argument("--out", default="BENCH_live.json",
                   help="output JSON path")
    # Bench defaults: uncapped workload (rate<=0) so the throughput phase
    # measures the wire, and json output (the legacy behaviour of this
    # alias, which predates its --format flag being honoured).
    q.set_defaults(fn=cmd_live_bench, rate=0.0, format="json")

    p = sub.add_parser(
        "chaos",
        help="fault-injection conformance matrix: every fault kind x "
             "both runtimes, each cell conformance-checked (repro.chaos)")
    p.add_argument("--kinds", default=None,
                   help="comma-separated fault kinds (default: all; an "
                        "unknown kind yields a failing cell)")
    p.add_argument("--runtimes", default="des,live",
                   help="comma-separated runtimes to exercise (des,live)")
    p.add_argument("--transport", choices=("local", "tcp"),
                   default="local", help="transport for the live cells")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=2.5,
                   help="wall seconds per live cell")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the DES cells (1=serial)")
    p.add_argument("--no-retries", action="store_true",
                   help="disable the live resilience layer — the "
                        "discrimination mode: the drop cell must fail")
    p.add_argument("--run-root", default=None,
                   help="keep live cell run directories under this path")
    p.add_argument("--plan", default=None, metavar="FILE",
                   help="replay one saved fault plan (or fuzz-input "
                        "counterexample) through the conformance checks "
                        "instead of running the matrix")
    p.add_argument("--mutate", choices=("drop-ck-req",), default=None,
                   help="with --plan on a fuzz input: re-apply the "
                        "protocol mutation the counterexample was found "
                        "against")
    p.add_argument("--no-cache", action="store_true",
                   help="do not read/write the on-disk result cache")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="result cache directory (plan replays are keyed "
                        "by config + fault-plan content hash)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    _add_trace_args(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided fault-plan fuzzing: mutate (plan, workload, "
             "config) inputs, judge each run against the Theorem 1/2 "
             "conformance oracle, shrink any violation (repro.fuzz)")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock budget in seconds (default 60 when "
                        "no --iterations)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after this many executions")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the execution fan-out")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed: mutation and scheduling decisions "
                        "replay deterministically")
    p.add_argument("--mutate", choices=("drop-ck-req",), default=None,
                   help="inject a known protocol mutation (discrimination "
                        "mode: the campaign must find it)")
    p.add_argument("--dir", default=".repro-fuzz",
                   help="corpus + crash bundle directory")
    p.add_argument("--resume", action="store_true",
                   help="reload a previous campaign's corpus from --dir")
    p.add_argument("--no-shrink", action="store_true",
                   help="report the first violating input without "
                        "delta-debugging it")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the long-lived job server: sweeps/chaos/live/bench as "
             "queued jobs over HTTP + WebSocket (see docs/SERVICE.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7341)
    p.add_argument("--jobs", type=int, default=2,
                   help="max concurrently running jobs")
    p.add_argument("--state-dir", default=".repro-serve",
                   help="durable job state directory")
    p.add_argument("--cache-dir", default=None,
                   help="sweep/bench result cache "
                        "(default: <state-dir>/cache)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit one job to a running server; prints the job id")
    p.add_argument("kind", choices=("sweep", "chaos-matrix", "live-run",
                                    "bench"))
    p.add_argument("--server", default="127.0.0.1:7341",
                   help="server address (host:port)")
    p.add_argument("--spec", default=None,
                   help="job spec: inline JSON object or @file")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs first (FIFO within a priority)")
    p.add_argument("--wait", action="store_true",
                   help="tail the event stream; exit code mirrors the "
                        "job outcome")
    p.add_argument("--quiet", action="store_true",
                   help="with --wait: do not echo events")
    p.add_argument("--trace-file", default=None,
                   help="with --wait: unwrap streamed obs events into "
                        "this JSONL file")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "watch",
        help="tail one job's event stream until it is terminal")
    p.add_argument("job", help="job id (e.g. j0001)")
    p.add_argument("--server", default="127.0.0.1:7341",
                   help="server address (host:port)")
    p.add_argument("--quiet", action="store_true",
                   help="do not echo events (exit code only)")
    p.add_argument("--trace-file", default=None,
                   help="unwrap streamed obs events into this JSONL file")
    p.set_defaults(fn=cmd_watch)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:
        # Setup failures (workers never connected, bad fault plan, …)
        # become a one-line error + exit 1 instead of a raw traceback.
        from .chaos.plan import ChaosError
        from .live import LiveSetupError
        if isinstance(exc, (LiveSetupError, ChaosError)):
            print(f"repro: error: {exc}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
