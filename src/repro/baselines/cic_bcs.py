"""Communication-induced (quasi-synchronous) checkpointing — BCS index-based.

The class the paper positions itself *within* and improves upon ([1, 8]
family; this is the classic Briatico-Ciuffoletti-Simoncini index scheme,
the canonical representative).  Rules:

* every process keeps an integer index, piggybacked on each application
  message;
* *basic* checkpoints fire on a local timer and increment the index;
* on receiving a message whose piggybacked index exceeds the local one,
  the process must take a **forced checkpoint before processing the
  message**, adopting the larger index.

Checkpoints with the same index belong to one consistent global checkpoint
(verified here via the standard "first checkpoint with index ≥ k" cut).

Cost profile — the paper's §1 critique, quantified by E6/E7:

* forced checkpoints multiply the checkpoint count well beyond one per
  interval under communication-heavy patterns;
* each forced checkpoint sits on the message's critical path (the
  ``pre_process_delay``), inflating response time by the state-capture
  cost;
* every checkpoint is written at take time, so bursts of forced
  checkpoints also hit the file server together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

INDEX_BYTES = 4


@dataclass(frozen=True)
class CicCheckpoint:
    """One checkpoint (basic or forced) at one process."""

    index: int
    taken_at: float
    smark: int
    rmark: int
    forced: bool


class CicRuntime(BaselineRuntime):
    """Run context for BCS communication-induced checkpointing."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 capture_time: float = 0.1,
                 horizon: float | None = None) -> None:
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.capture_time = capture_time

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: CicHost(
                pid, sim, rt, app, capture_time=self.capture_time), apps)

    # -- metrics ---------------------------------------------------------------

    def forced_checkpoints(self) -> int:
        """Communication-induced (forced) checkpoints across all hosts."""
        return sum(sum(1 for c in h.checkpoints if c.forced)
                   for h in self.hosts.values())

    def basic_checkpoints(self) -> int:
        """Timer-driven (scheduled) checkpoints across all hosts."""
        return sum(sum(1 for c in h.checkpoints if not c.forced)
                   for h in self.hosts.values())

    # -- verification --------------------------------------------------------------

    def common_indices(self) -> list[int]:
        """Indices k for which every process has a checkpoint with index >= k."""
        if not self.hosts:
            return []
        max_common = min((max((c.index for c in h.checkpoints), default=0)
                          for h in self.hosts.values()), default=0)
        return list(range(1, max_common + 1))

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """The standard BCS recovery lines: cut k = first ckpt with index >= k."""
        out: dict[int, dict[int, CheckpointRecord]] = {}
        for k in self.common_indices():
            out[k] = {pid: host.cut_record(k)
                      for pid, host in self.hosts.items()}
        return out


class CicHost(BaselineHost):
    """One process of the BCS index-based protocol."""

    def __init__(self, pid: int, sim: Simulator, runtime: CicRuntime,
                 app: Any = None, capture_time: float = 0.1) -> None:
        super().__init__(pid, sim, runtime, app, capture_time=capture_time)
        self.index = 0
        self.checkpoints: list[CicCheckpoint] = []

    # -- basic checkpoints (local timer) -------------------------------------------

    def protocol_start(self) -> None:
        self._arm_basic()

    def _arm_basic(self) -> None:
        # Jitter the phase so basic checkpoints are not artificially aligned
        # (the protocol is uncoordinated by design).
        rng = self.sim.rng.stream(f"cic.{self.pid}")
        delay = self.runtime.interval * float(rng.uniform(0.8, 1.2))
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + delay > horizon:
            return
        self.set_timeout(delay, self._basic_checkpoint)

    def _basic_checkpoint(self) -> None:
        self.index += 1
        self._take(forced=False)
        self._arm_basic()

    # -- forced checkpoints (the CIC rule) ---------------------------------------------

    def pre_process_delay(self, msg: Message) -> float:
        """Apply the BCS rule *before* the application sees the message.

        Taking the forced checkpoint here (rather than in a post-hook) is
        load-bearing: the checkpoint's cut position must exclude this
        message's receive, and the application's processing is delayed by
        the capture time — the response-time penalty E7 measures.
        """
        m_index = msg.meta.get("cic_index", 0)
        if m_index > self.index:
            self.index = m_index
            self._take(forced=True)
            return self.capture_time
        return 0.0

    def _take(self, forced: bool) -> None:
        smark, rmark = self.marks()
        ck = CicCheckpoint(index=self.index, taken_at=self.sim.now,
                           smark=smark, rmark=rmark, forced=forced)
        self.checkpoints.append(ck)
        self.trace("ckpt.tentative", csn=self.index,
                   bytes=self.runtime.state_bytes, forced=forced)
        self.take_checkpoint_write(self.runtime.state_bytes,
                                   label=f"cic:{self.pid}:{self.index}")
        # CIC has no local knowledge of the globally-minimal index, so no
        # checkpoint can be garbage-collected without an extra coordination
        # protocol — every checkpoint is retained (E13's footprint gap).
        self.runtime.storage.space.retain(
            self.pid, f"ckpt:{len(self.checkpoints)}",
            self.runtime.state_bytes, self.sim.now)

    # -- piggyback -------------------------------------------------------------------------

    def decorate_app_meta(self) -> dict[str, Any]:
        return {"cic_index": self.index}

    def piggyback_bytes(self) -> int:
        return INDEX_BYTES

    def on_control(self, msg: Message) -> None:  # pragma: no cover - none sent
        raise ValueError("CIC sends no control messages")

    # -- verification ------------------------------------------------------------------------

    def cut_record(self, k: int) -> CheckpointRecord:
        """The first checkpoint with index >= k (guaranteed to exist for
        every k in the runtime's ``common_indices``)."""
        for ck in self.checkpoints:
            if ck.index >= k:
                return self.prefix_record(
                    seq=k, taken_at=ck.taken_at, finalized_at=ck.taken_at,
                    smark=ck.smark, rmark=ck.rmark,
                    state_bytes=self.runtime.state_bytes)
        raise KeyError(f"P{self.pid} has no checkpoint with index >= {k}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        forced = sum(1 for c in self.checkpoints if c.forced)
        return (f"CicHost(P{self.pid}, index={self.index}, "
                f"ckpts={len(self.checkpoints)} ({forced} forced))")
