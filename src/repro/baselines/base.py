"""Shared scaffolding for baseline checkpointing protocols.

Every baseline host exposes the *same application surface* as the optimistic
host (``app_send`` / ``on_message`` driven by an
:class:`~repro.workload.app.AppBehavior`), so the comparison harness can run
one workload under every protocol.  This module centralizes:

* application-message bookkeeping (cumulative send/receive uid lists used
  to build :class:`~repro.causality.consistency.CheckpointRecord` cuts);
* control-message send helpers with per-type counters;
* send-blocking (Koo-Toueg's defining cost) with blocked-time accounting;
* state capture cost accounting and per-message response-delay tracking
  (the CIC forced-checkpoint-before-processing penalty).
"""

from __future__ import annotations

from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..des.process import SimProcess
from ..net.message import Message
from ..net.network import Network
from ..storage.stable_storage import StableStorage


class BaselineRuntime:
    """Per-run context shared by a baseline's hosts."""

    def __init__(self, sim: Simulator, network: Network,
                 storage: StableStorage, horizon: float | None = None) -> None:
        self.sim = sim
        self.network = network
        self.storage = storage
        self.horizon = horizon
        self.hosts: dict[int, "BaselineHost"] = {}

    @property
    def n(self) -> int:
        return self.network.n

    def build(self, host_factory, apps: dict[int, Any] | None = None
              ) -> list["BaselineHost"]:
        """Create one host per node via ``host_factory(pid, sim, self, app)``."""
        hosts = []
        for pid in range(self.n):
            app = apps.get(pid) if apps else None
            host = host_factory(pid, self.sim, self, app)
            self.network.add_process(host)
            self.hosts[pid] = host
            hosts.append(host)
        return hosts

    def start(self) -> None:
        """Start every process (on_start hooks, protocol timers)."""
        self.network.start_all()

    def control_message_count(self, ctype: str | None = None) -> int:
        """Control messages sent, optionally filtered by type label."""
        total = 0
        for host in self.hosts.values():
            if ctype is None:
                total += sum(host.ctl_sent.values())
            else:
                total += host.ctl_sent.get(ctype, 0)
        return total

    def total_blocked_time(self) -> float:
        """Total application send-blocked time across hosts (Koo-Toueg)."""
        return sum(h.blocked_time for h in self.hosts.values())

    def total_checkpoints(self) -> int:
        """Checkpoints taken (written to stable storage) across hosts."""
        return sum(h.checkpoints_taken for h in self.hosts.values())

    def response_delays(self) -> list[float]:
        """Per-app-message pre-processing delays across all hosts."""
        out: list[float] = []
        for host in self.hosts.values():
            out.extend(host.response_delays)
        return out


class BaselineHost(SimProcess):
    """Common behaviour for baseline protocol hosts.

    Subclasses implement ``on_app_message(msg)`` (post-application protocol
    reaction) and ``on_control(msg)``; they may also override
    ``decorate_app_meta()`` to piggyback protocol state (CIC's index) and
    ``piggyback_bytes()`` to charge for it.
    """

    #: Message kind used for this protocol's control traffic.
    CTL_KIND = "ctl"

    def __init__(self, pid: int, sim: Simulator, runtime: BaselineRuntime,
                 app: Any = None, capture_time: float = 0.0) -> None:
        super().__init__(pid, sim)
        self.runtime = runtime
        self.app = app
        self.capture_time = capture_time
        # Verification bookkeeping ------------------------------------------------
        self.sent_uids: list[int] = []
        self.recv_uids: list[int] = []
        # Blocking (Koo-Toueg) -----------------------------------------------------
        self._send_blocked = False
        self._blocked_since = 0.0
        self._pending_sends: list[tuple[int, Any, int]] = []
        self.blocked_time = 0.0
        # Metrics --------------------------------------------------------------------
        self.ctl_sent: dict[str, int] = {}
        self.checkpoints_taken = 0
        self.response_delays: list[float] = []

    # -- app surface (mirrors OptimisticProcess) ----------------------------------

    def on_start(self) -> None:
        if self.app is not None:
            self.app.on_start(self)
        self.protocol_start()

    def protocol_start(self) -> None:
        """Subclass hook: arm protocol timers etc."""

    def app_send(self, dst: int, payload: Any = None,
                 size: int = 0) -> Message | None:
        """Send an application message (queued while sends are blocked).

        Returns ``None`` when the message was queued — queued sends are
        released (and actually transmitted) at unblock time, which is the
        performance penalty Koo-Toueg pays.
        """
        if self._send_blocked:
            self._pending_sends.append((dst, payload, size))
            return None
        meta = self.decorate_app_meta()
        msg = self.network.send(self.pid, dst, payload, size=size,
                                kind="app", meta=meta,
                                overhead_bytes=self.piggyback_bytes())
        self.sent_uids.append(msg.uid)
        self.on_app_sent(msg)
        return msg

    def decorate_app_meta(self) -> dict[str, Any] | None:
        """Piggyback for app messages (default: none)."""
        return None

    def piggyback_bytes(self) -> int:
        """Wire overhead charged per app message (default: none)."""
        return 0

    def on_app_sent(self, msg: Message) -> None:
        """Subclass hook after an app message leaves (e.g. sender logging)."""

    def on_message(self, msg: Message) -> None:
        if msg.kind == "app":
            delay = self.pre_process_delay(msg)
            self.response_delays.append(delay)
            if delay > 0:
                self.sim.schedule(delay, lambda: self._process_app(msg))
            else:
                self._process_app(msg)
        else:
            self.on_control(msg)

    def _process_app(self, msg: Message) -> None:
        if self.app is not None:
            self.app.on_message(self, msg)
        self.recv_uids.append(msg.uid)
        self.on_app_message(msg)

    def pre_process_delay(self, msg: Message) -> float:
        """Delay imposed *before* the application may process ``msg``.

        Zero by default; CIC returns the forced-checkpoint capture time —
        exactly the response-time inflation the paper criticizes (§1).
        """
        return 0.0

    def on_app_message(self, msg: Message) -> None:
        """Subclass hook after the application processed ``msg``."""

    def on_control(self, msg: Message) -> None:
        """Subclass hook for protocol control messages."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------------

    def send_control(self, dst: int, payload: Any, ctype: str,
                     nbytes: int = 16) -> Message:
        """Send one protocol control message (counted per ``ctype``)."""
        self.ctl_sent[ctype] = self.ctl_sent.get(ctype, 0) + 1
        self.trace("ctl.send", ctype=ctype, dst=dst)
        return self.network.send(self.pid, dst, payload, kind=self.CTL_KIND,
                                 overhead_bytes=nbytes)

    def broadcast_control(self, payload: Any, ctype: str,
                          nbytes: int = 16) -> None:
        """Send one control message to every other process."""
        for dst in range(self.runtime.n):
            if dst != self.pid:
                self.send_control(dst, payload, ctype, nbytes=nbytes)

    def block_sends(self) -> None:
        """Start queueing application sends (Koo-Toueg tentative phase)."""
        if not self._send_blocked:
            self._send_blocked = True
            self._blocked_since = self.sim.now
            self.trace("app.block")

    def unblock_sends(self) -> None:
        """Release queued sends; they are transmitted now (late)."""
        if not self._send_blocked:
            return
        self._send_blocked = False
        self.blocked_time += self.sim.now - self._blocked_since
        self.trace("app.unblock",
                   queued=len(self._pending_sends),
                   blocked=self.sim.now - self._blocked_since)
        pending, self._pending_sends = self._pending_sends, []
        for dst, payload, size in pending:
            self.app_send(dst, payload, size=size)

    @property
    def sends_blocked(self) -> bool:
        return self._send_blocked

    def take_checkpoint_write(self, nbytes: int, label: str,
                              callback=None) -> None:
        """Record a checkpoint write at the shared file server."""
        self.checkpoints_taken += 1
        self.runtime.storage.write(self.pid, nbytes, label=label,
                                   callback=callback)

    def marks(self) -> tuple[int, int]:
        """Snapshot of (sent, received) counts — a cut position."""
        return (len(self.sent_uids), len(self.recv_uids))

    def prefix_record(self, seq: int, taken_at: float,
                      finalized_at: float | None,
                      smark: int, rmark: int,
                      extra_sent: tuple[int, ...] = (),
                      extra_recv: tuple[int, ...] = (),
                      state_bytes: int = 0,
                      log_bytes: int = 0) -> CheckpointRecord:
        """Build a verification record from a cut position (+channel state)."""
        return CheckpointRecord(
            pid=self.pid, seq=seq, taken_at=taken_at,
            finalized_at=finalized_at,
            sent_uids=frozenset(self.sent_uids[:smark]) | frozenset(extra_sent),
            recv_uids=frozenset(self.recv_uids[:rmark]) | frozenset(extra_recv),
            state_bytes=state_bytes, log_bytes=log_bytes)
