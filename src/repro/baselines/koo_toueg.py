"""Koo-Toueg blocking coordinated checkpointing [5].

The synchronous baseline whose *blocking* the paper's introduction calls
out: a two-phase commit over checkpoints.

1. The coordinator takes a tentative checkpoint, **blocks application
   sends**, and requests a tentative checkpoint from every process.
2. Each process takes a tentative checkpoint (writing its state to the file
   server — all within one round-trip of each other: the contention spike),
   blocks its own sends, and acknowledges.
3. When all acknowledgements are in, the coordinator broadcasts *commit*;
   processes make the checkpoint permanent and unblock.

We implement the conservative full-participation variant (every process
checkpoints each round; the original only involves dependent processes —
with the all-to-all workloads used in the experiments the dependency set is
the full set anyway, and the paper compares against this class wholesale).

Cost profile: 3(N-1) control messages per round, state writes clustered in
time, and a send-blocked window of roughly a round-trip plus the slowest
state write per round — measured by ``blocked_time``.
"""

from __future__ import annotations

from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

CTL_BYTES = 12


class KooTouegRuntime(BaselineRuntime):
    """Run context for the blocking two-phase protocol."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 coordinator: int = 0, horizon: float | None = None) -> None:
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.coordinator = coordinator

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: KooTouegHost(pid, sim, rt, app), apps)

    def complete_rounds(self) -> list[int]:
        """Rounds committed by every process."""
        common: set[int] | None = None
        for host in self.hosts.values():
            done = set(host.committed)
            common = done if common is None else common & done
        return sorted(common or ())

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """Per committed round: every process's CheckpointRecord."""
        return {r: {pid: host.round_record(r)
                    for pid, host in self.hosts.items()}
                for r in self.complete_rounds()}


class KooTouegHost(BaselineHost):
    """One process of the blocking two-phase protocol."""

    def __init__(self, pid: int, sim: Simulator, runtime: KooTouegRuntime,
                 app: Any = None) -> None:
        super().__init__(pid, sim, runtime, app)
        #: round -> (taken_at, smark, rmark); set when the tentative ckpt is taken.
        self.tentative_marks: dict[int, tuple[float, int, int]] = {}
        #: round -> commit time.
        self.committed: dict[int, float] = {}
        self._round_active = False
        self._acks_pending: set[int] = set()
        self._current_round = 0

    # -- coordinator driving -----------------------------------------------------

    def protocol_start(self) -> None:
        if self.pid == self.runtime.coordinator:
            self._arm_initiation()

    def _arm_initiation(self) -> None:
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + self.runtime.interval > horizon:
            return
        self.set_timeout(self.runtime.interval, self._initiate)

    def _initiate(self) -> None:
        if not self._round_active:
            self._current_round += 1
            r = self._current_round
            self._round_active = True
            self._acks_pending = {p for p in range(self.runtime.n)
                                  if p != self.pid}
            self._take_tentative(r)
            self.broadcast_control(("kt_req", r), "KT_REQ", nbytes=CTL_BYTES)
            if not self._acks_pending:  # single-process degenerate case
                self._commit(r)
        self._arm_initiation()

    # -- phases --------------------------------------------------------------------

    def _take_tentative(self, r: int) -> None:
        smark, rmark = self.marks()
        self.tentative_marks[r] = (self.sim.now, smark, rmark)
        self._current_round = max(self._current_round, r)
        self.block_sends()
        self.trace("ckpt.tentative", csn=r, bytes=self.runtime.state_bytes)
        self.take_checkpoint_write(self.runtime.state_bytes,
                                   label=f"kt:{self.pid}:{r}")
        self.runtime.storage.space.retain(
            self.pid, f"state:{r}", self.runtime.state_bytes, self.sim.now)

    def _commit(self, r: int) -> None:
        self.committed[r] = self.sim.now
        self._round_active = False
        self.trace("ckpt.finalize", csn=r, reason="kt.commit")
        # The commit message certifies S_r is fully committed (the
        # coordinator saw every ack), so the previous generation is
        # immediately obsolete — the blocking protocol's one storage perk.
        if r >= 2:
            self.runtime.storage.space.release(self.pid, f"state:{r - 1}",
                                               self.sim.now)
        self.unblock_sends()

    def on_control(self, msg: Message) -> None:
        kind, r = msg.payload
        if kind == "kt_req":
            if r not in self.tentative_marks:
                self._take_tentative(r)
            self.send_control(msg.src, ("kt_ack", r), "KT_ACK",
                              nbytes=CTL_BYTES)
        elif kind == "kt_ack":
            assert self.pid == self.runtime.coordinator
            if r == self._current_round and self._round_active:
                self._acks_pending.discard(msg.src)
                if not self._acks_pending:
                    self.broadcast_control(("kt_commit", r), "KT_COMMIT",
                                           nbytes=CTL_BYTES)
                    self._commit(r)
        elif kind == "kt_commit":
            if r not in self.committed:
                self._commit(r)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown control payload {msg.payload!r}")

    # -- verification -------------------------------------------------------------------

    def round_record(self, r: int) -> CheckpointRecord:
        """Verification record of this process's checkpoint for one round."""
        taken_at, smark, rmark = self.tentative_marks[r]
        return self.prefix_record(
            seq=r, taken_at=taken_at, finalized_at=self.committed.get(r),
            smark=smark, rmark=rmark,
            state_bytes=self.runtime.state_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KooTouegHost(P{self.pid}, committed={sorted(self.committed)}, "
                f"blocked={self.blocked_time:.3g}s)")
