"""Plank's topology-limited staggered checkpointing [10].

Plank's scheme (the paper's §4 description): a Chandy-Lamport-style round
in which physical checkpoint writes are staggered *as much as the topology
allows* — processes at the same distance from the coordinator write
simultaneously, successive distance classes write in waves.  The paper's
pointed remark, reproduced by experiment E3d:

    "a completely connected topology would subvert staggering in this
    algorithm"

— on a complete graph every non-coordinator is at distance 1, so all N−1
state writes still collide; on a line the waves have width 1 and staggering
is perfect (Vaidya's token variant, :mod:`.staggered`, achieves that width
on *any* topology, which is exactly his improvement over Plank).

Round structure:

1. the coordinator takes its logical checkpoint, floods ``snap(r)``, and
   writes its own state (wave 0);
2. on ``snap(r)`` every process takes a *logical* checkpoint (cut marks +
   start of sender-side logging — Vaidya's logical-checkpoint device keeps
   the staggered instants consistent);
3. when all writes of wave ``d`` complete (acked to the coordinator), the
   coordinator broadcasts ``wave(d+1)``; processes at BFS depth ``d+1``
   write;
4. after the last wave the coordinator broadcasts ``end(r)``; everyone
   flushes its send log and the round completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

CTL_BYTES = 12


@dataclass
class PlankRound:
    """Per-round state at one process."""

    round_id: int
    taken_at: float
    smark: int
    rmark: int
    logging: bool = True
    logged_uids: list[int] = field(default_factory=list)
    log_bytes: int = 0
    wrote: bool = False
    completed_at: float | None = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class PlankStaggeredRuntime(BaselineRuntime):
    """Run context: BFS-depth write waves from the coordinator."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 coordinator: int = 0, horizon: float | None = None) -> None:
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.coordinator = coordinator
        lengths = nx.single_source_shortest_path_length(
            network.topology.graph, coordinator)
        #: pid -> BFS depth from the coordinator (wave index).
        self.depth = {pid: lengths[pid] for pid in range(network.n)}
        self.max_depth = max(self.depth.values())
        #: depth -> number of processes writing in that wave.
        self.wave_width = {d: sum(1 for v in self.depth.values() if v == d)
                           for d in range(self.max_depth + 1)}

    def build(self, apps: dict[int, Any] | None = None):
        """Create one Plank host per node."""
        return super().build(
            lambda pid, sim, rt, app: PlankStaggeredHost(pid, sim, rt, app),
            apps)

    def complete_rounds(self) -> list[int]:
        """Rounds whose end broadcast reached every process."""
        common: set[int] | None = None
        for host in self.hosts.values():
            done = {r for r, st in host.rounds.items() if st.complete}
            common = done if common is None else common & done
        return sorted(common or ())

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """Per complete round: every process's CheckpointRecord."""
        return {r: {pid: host.round_record(r)
                    for pid, host in self.hosts.items()}
                for r in self.complete_rounds()}


class PlankStaggeredHost(BaselineHost):
    """One process of Plank's wave-staggered protocol."""

    def __init__(self, pid: int, sim: Simulator,
                 runtime: PlankStaggeredRuntime, app: Any = None) -> None:
        super().__init__(pid, sim, runtime, app)
        self.rounds: dict[int, PlankRound] = {}
        self._next_round = 1
        self._round_active = False        # coordinator only
        self._wave_pending: int = 0        # coordinator: acks awaited
        self._current_wave: int = 0

    # -- coordinator driving -----------------------------------------------------

    def protocol_start(self) -> None:
        """Arm periodic round initiation at the coordinator."""
        if self.pid == self.runtime.coordinator:
            self._arm_initiation()

    def _arm_initiation(self) -> None:
        horizon = self.runtime.horizon
        if horizon is not None and \
                self.sim.now + self.runtime.interval > horizon:
            return
        self.set_timeout(self.runtime.interval, self._initiate)

    def _initiate(self) -> None:
        if not self._round_active:
            self._round_active = True
            r = self._next_round
            self._next_round += 1
            self.broadcast_control(("pl_snap", r), "SNAP", nbytes=CTL_BYTES)
            self._snap(r)
            # Wave 0: the coordinator itself.
            self._current_wave = 0
            self._wave_pending = 1
            self._write_state(r)
        self._arm_initiation()

    # -- snapshot + waves -----------------------------------------------------------

    def _snap(self, r: int) -> None:
        if r in self.rounds:
            return
        smark, rmark = self.marks()
        self.rounds[r] = PlankRound(round_id=r, taken_at=self.sim.now,
                                    smark=smark, rmark=rmark)
        self.trace("ckpt.tentative", csn=r, bytes=self.runtime.state_bytes,
                   forced=False)

    def _write_state(self, r: int) -> None:
        st = self.rounds[r]
        if st.wrote:
            return
        st.wrote = True
        self.runtime.storage.space.retain(
            self.pid, f"state:{r}", self.runtime.state_bytes, self.sim.now)
        self.take_checkpoint_write(
            self.runtime.state_bytes, label=f"plank:{self.pid}:{r}",
            callback=lambda req: self._write_done(r))

    def _write_done(self, r: int) -> None:
        if self.pid == self.runtime.coordinator:
            self._on_wave_ack(r)
        else:
            self.send_control(self.runtime.coordinator, ("pl_done", r),
                              "DONE", nbytes=CTL_BYTES)

    def _on_wave_ack(self, r: int) -> None:
        assert self.pid == self.runtime.coordinator
        self._wave_pending -= 1
        if self._wave_pending > 0:
            return
        if self._current_wave < self.runtime.max_depth:
            self._current_wave += 1
            self._wave_pending = self.runtime.wave_width[self._current_wave]
            self.broadcast_control(("pl_wave", r, self._current_wave),
                                   "WAVE", nbytes=CTL_BYTES)
        else:
            self.broadcast_control(("pl_end", r), "END", nbytes=CTL_BYTES)
            self._end_round(r)
            self._round_active = False

    def on_control(self, msg: Message) -> None:
        """Dispatch snap/wave/done/end control messages."""
        kind, r, *rest = msg.payload
        if kind == "pl_snap":
            self._snap(r)
        elif kind == "pl_wave":
            (wave,) = rest
            self._snap(r)  # belt-and-braces if the snap was overtaken
            if self.runtime.depth[self.pid] == wave:
                self._write_state(r)
        elif kind == "pl_done":
            self._on_wave_ack(r)
        elif kind == "pl_end":
            self._end_round(r)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown control payload {msg.payload!r}")

    def _end_round(self, r: int) -> None:
        st = self.rounds.get(r)
        if st is None or st.complete:
            return
        st.logging = False
        st.completed_at = self.sim.now
        self.trace("ckpt.finalize", csn=r, reason="stag.end",
                   log_msgs=len(st.logged_uids), log_bytes=st.log_bytes)
        self.runtime.storage.write(self.pid, st.log_bytes,
                                   label=f"plank-log:{self.pid}:{r}")
        space = self.runtime.storage.space
        space.retain(self.pid, f"log:{r}", st.log_bytes, self.sim.now)
        if r >= 2:
            space.release(self.pid, f"state:{r - 2}", self.sim.now)
            space.release(self.pid, f"log:{r - 2}", self.sim.now)

    # -- sender-side logging (Vaidya's logical-checkpoint device) ----------------------

    def on_app_sent(self, msg: Message) -> None:
        """Log sends between the logical checkpoint and round end."""
        for st in self.rounds.values():
            if st.logging and not st.complete:
                st.logged_uids.append(msg.uid)
                st.log_bytes += msg.total_bytes

    # -- verification ---------------------------------------------------------------------

    def round_record(self, r: int) -> CheckpointRecord:
        """Verification record incl. the sender-side log for one round."""
        st = self.rounds[r]
        return self.prefix_record(
            seq=r, taken_at=st.taken_at, finalized_at=st.completed_at,
            smark=st.smark, rmark=st.rmark,
            extra_sent=tuple(st.logged_uids),
            state_bytes=self.runtime.state_bytes, log_bytes=st.log_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlankStaggeredHost(P{self.pid}, rounds={sorted(self.rounds)})"
