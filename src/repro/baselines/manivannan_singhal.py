"""Manivannan-Singhal quasi-synchronous checkpointing [8].

The authors' own earlier algorithm ("Asynchronous recovery without using
vector timestamps", JPDC 2002) and the immediate ancestor of the paper
under reproduction.  Like BCS it is index-based and forces checkpoints
before processing, but its sequence numbers are tied to the *checkpoint
schedule* rather than free-running:

* every process is due a basic checkpoint at times ``k·interval`` (modulo
  local clock skew); the k-th scheduled checkpoint carries sequence number
  ``k``;
* on receiving a message with ``m.sn >`` the local latest sequence number,
  the process takes a **forced checkpoint with sn = m.sn before
  processing** the message;
* at a scheduled instant ``k``, the basic checkpoint is **skipped** if the
  process already holds a checkpoint with ``sn >= k`` (a forced checkpoint
  substituted for it) — the feature that keeps MS's checkpoint count far
  below BCS's under heavy traffic.

Checkpoints with equal sequence number belong to one consistent global
checkpoint (verified via the same first-checkpoint-with-sn≥k cuts as CIC).

Cost profile vs the optimistic protocol: no blocking and ≈ one checkpoint
per interval, but (a) forced checkpoints still sit on the message critical
path (response-time penalty, E7's family) and (b) every checkpoint is
written at take time, so near-simultaneous index propagation still clusters
writes at the file server (E3's family).  These are exactly the two costs
§1 says the optimistic scheme removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

SN_BYTES = 4


@dataclass(frozen=True)
class MsCheckpoint:
    """One checkpoint (basic or forced) at one process."""

    sn: int
    taken_at: float
    smark: int
    rmark: int
    forced: bool


class ManivannanSinghalRuntime(BaselineRuntime):
    """Run context for MS quasi-synchronous checkpointing."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 capture_time: float = 0.1, clock_skew: float = 0.05,
                 horizon: float | None = None) -> None:
        if not (0.0 <= clock_skew < 0.5):
            raise ValueError(f"clock_skew must be in [0, 0.5), got {clock_skew}")
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.capture_time = capture_time
        #: Fractional skew of each process's checkpoint schedule (uniform
        #: in ±skew·interval), modelling loosely synchronized clocks.
        self.clock_skew = clock_skew

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: ManivannanSinghalHost(
                pid, sim, rt, app, capture_time=self.capture_time), apps)

    # -- metrics ----------------------------------------------------------------

    def forced_checkpoints(self) -> int:
        """Communication-induced checkpoints across all hosts."""
        return sum(sum(1 for c in h.checkpoints if c.forced)
                   for h in self.hosts.values())

    def skipped_basics(self) -> int:
        """Scheduled checkpoints skipped because a forced one substituted."""
        return sum(h.skipped_basics for h in self.hosts.values())

    # -- verification -------------------------------------------------------------

    def common_sns(self) -> list[int]:
        """Sequence numbers k reached (sn >= k) by every process."""
        if not self.hosts:
            return []
        max_common = min((max((c.sn for c in h.checkpoints), default=0)
                          for h in self.hosts.values()), default=0)
        return list(range(1, max_common + 1))

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """The MS recovery lines: cut k = first checkpoint with sn >= k."""
        return {k: {pid: host.cut_record(k)
                    for pid, host in self.hosts.items()}
                for k in self.common_sns()}


class ManivannanSinghalHost(BaselineHost):
    """One process of the MS quasi-synchronous protocol."""

    def __init__(self, pid: int, sim: Simulator,
                 runtime: ManivannanSinghalRuntime, app: Any = None,
                 capture_time: float = 0.1) -> None:
        super().__init__(pid, sim, runtime, app, capture_time=capture_time)
        self.sn = 0
        self.checkpoints: list[MsCheckpoint] = []
        self.skipped_basics = 0
        self._next_slot = 1

    # -- scheduled basics ----------------------------------------------------------

    def protocol_start(self) -> None:
        self._arm_next_slot()

    def _slot_time(self, k: int) -> float:
        rng = self.sim.rng.stream(f"ms.{self.pid}")
        skew = float(rng.uniform(-self.runtime.clock_skew,
                                 self.runtime.clock_skew))
        return (k + skew) * self.runtime.interval

    def _arm_next_slot(self) -> None:
        t = self._slot_time(self._next_slot)
        horizon = self.runtime.horizon
        if horizon is not None and t > horizon:
            return
        self.set_timeout(max(t - self.sim.now, 0.0), self._basic_checkpoint)

    def _basic_checkpoint(self) -> None:
        k = self._next_slot
        self._next_slot += 1
        if self.sn < k:
            # The k-th scheduled checkpoint is still due.
            self.sn = k
            self._take(forced=False)
        else:
            # A forced checkpoint already substituted for this slot — the
            # MS saving that BCS lacks.
            self.skipped_basics += 1
            self.trace("ckpt.skip", sn=self.sn, slot=k)
        self._arm_next_slot()

    # -- the forced rule ----------------------------------------------------------------

    def pre_process_delay(self, msg: Message) -> float:
        m_sn = msg.meta.get("ms_sn", 0)
        if m_sn > self.sn:
            self.sn = m_sn
            self._take(forced=True)
            return self.capture_time
        return 0.0

    def _take(self, forced: bool) -> None:
        smark, rmark = self.marks()
        ck = MsCheckpoint(sn=self.sn, taken_at=self.sim.now, smark=smark,
                          rmark=rmark, forced=forced)
        self.checkpoints.append(ck)
        self.trace("ckpt.tentative", csn=self.sn,
                   bytes=self.runtime.state_bytes, forced=forced)
        self.take_checkpoint_write(self.runtime.state_bytes,
                                   label=f"ms:{self.pid}:{self.sn}")
        # Like BCS, garbage collection of old checkpoints needs a global
        # protocol MS does not run here; everything is retained.
        self.runtime.storage.space.retain(
            self.pid, f"ckpt:{len(self.checkpoints)}",
            self.runtime.state_bytes, self.sim.now)

    # -- piggyback ---------------------------------------------------------------------------

    def decorate_app_meta(self) -> dict[str, Any]:
        return {"ms_sn": self.sn}

    def piggyback_bytes(self) -> int:
        return SN_BYTES

    def on_control(self, msg: Message) -> None:  # pragma: no cover
        raise ValueError("MS quasi-synchronous sends no control messages")

    # -- verification -----------------------------------------------------------------------------

    def cut_record(self, k: int) -> CheckpointRecord:
        """First checkpoint with sn >= k (the MS recovery-line member)."""
        for ck in self.checkpoints:
            if ck.sn >= k:
                return self.prefix_record(
                    seq=k, taken_at=ck.taken_at, finalized_at=ck.taken_at,
                    smark=ck.smark, rmark=ck.rmark,
                    state_bytes=self.runtime.state_bytes)
        raise KeyError(f"P{self.pid} has no checkpoint with sn >= {k}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        forced = sum(1 for c in self.checkpoints if c.forced)
        return (f"ManivannanSinghalHost(P{self.pid}, sn={self.sn}, "
                f"ckpts={len(self.checkpoints)} ({forced} forced, "
                f"{self.skipped_basics} skipped))")
