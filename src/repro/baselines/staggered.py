"""Staggered consistent checkpointing (Plank [10] / Vaidya [11]).

The related-work baselines that attack the *same* problem as the paper —
file-server contention — by **serializing** checkpoint writes instead of
deferring them:

* a token starts at the coordinator; each process, on receiving the token,
  captures its state and writes it to the file server, forwarding the token
  only when its write *completes* — so at most one checkpoint write is in
  service at any time (perfect staggering, Vaidya's "all checkpoints
  staggered" variant; Plank's topology-limited staggering degenerates to
  this on the logical ring we stagger over);
* consistency across the staggered instants comes from Vaidya's logical
  checkpoint device: every process **logs the application messages it
  sends** between its own checkpoint and the end of the round, making them
  replayable and hence never orphans;
* when the token returns, the coordinator broadcasts ``round end``; each
  process flushes its send log and the round is complete.

Cost profile: near-zero write contention (that is the point) but a round
takes ``N × (write time + token hop)`` — long rounds, growing linearly in
N, versus the optimistic protocol's constant-ish convergence time.  E3/E10
exhibit exactly this trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

CTL_BYTES = 12


@dataclass
class StaggerRound:
    """Per-round state at one process."""

    round_id: int
    taken_at: float
    smark: int
    rmark: int
    logging: bool = True
    logged_uids: list[int] = field(default_factory=list)
    log_bytes: int = 0
    completed_at: float | None = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class StaggeredRuntime(BaselineRuntime):
    """Run context for token-staggered checkpointing."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 coordinator: int = 0, horizon: float | None = None) -> None:
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.coordinator = coordinator

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: StaggeredHost(pid, sim, rt, app), apps)

    def complete_rounds(self) -> list[int]:
        """Rounds whose end broadcast reached every process."""
        common: set[int] | None = None
        for host in self.hosts.values():
            done = {r for r, st in host.rounds.items() if st.complete}
            common = done if common is None else common & done
        return sorted(common or ())

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """Per complete round: every process's CheckpointRecord."""
        return {r: {pid: host.round_record(r)
                    for pid, host in self.hosts.items()}
                for r in self.complete_rounds()}

    def round_latencies(self) -> list[float]:
        """End-to-end duration of each complete round (start at coordinator
        checkpoint, end at the last process's completion)."""
        out = []
        for r in self.complete_rounds():
            start = self.hosts[self.coordinator].rounds[r].taken_at
            end = max(h.rounds[r].completed_at for h in self.hosts.values())
            out.append(end - start)
        return out


class StaggeredHost(BaselineHost):
    """One process of the token-staggered protocol."""

    def __init__(self, pid: int, sim: Simulator, runtime: StaggeredRuntime,
                 app: Any = None) -> None:
        super().__init__(pid, sim, runtime, app)
        self.rounds: dict[int, StaggerRound] = {}
        self._next_round = 1
        self._round_active = False  # coordinator only

    # -- coordinator driving ---------------------------------------------------

    def protocol_start(self) -> None:
        if self.pid == self.runtime.coordinator:
            self._arm_initiation()

    def _arm_initiation(self) -> None:
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + self.runtime.interval > horizon:
            return
        self.set_timeout(self.runtime.interval, self._initiate)

    def _initiate(self) -> None:
        if not self._round_active:
            self._round_active = True
            r = self._next_round
            self._next_round += 1
            self._take_checkpoint(r)
        self._arm_initiation()

    # -- token protocol ------------------------------------------------------------

    def _take_checkpoint(self, r: int) -> None:
        smark, rmark = self.marks()
        st = StaggerRound(round_id=r, taken_at=self.sim.now,
                          smark=smark, rmark=rmark)
        self.rounds[r] = st
        self.trace("ckpt.tentative", csn=r, bytes=self.runtime.state_bytes)
        self.runtime.storage.space.retain(
            self.pid, f"state:{r}", self.runtime.state_bytes, self.sim.now)
        # The defining move: forward the token only once OUR write finished,
        # so writes are serialized at the file server.
        self.take_checkpoint_write(
            self.runtime.state_bytes, label=f"stag:{self.pid}:{r}",
            callback=lambda req: self._write_done(r))

    def _write_done(self, r: int) -> None:
        nxt = (self.pid + 1) % self.runtime.n
        if nxt == self.runtime.coordinator:
            # Token would return: the round's staggered writes are done.
            if self.pid == self.runtime.coordinator:
                # Degenerate single-process system.
                self._end_round(r)
            else:
                self.send_control(self.runtime.coordinator,
                                  ("stag_done", r), "TOKEN", nbytes=CTL_BYTES)
        else:
            self.send_control(nxt, ("stag_token", r), "TOKEN",
                              nbytes=CTL_BYTES)

    def on_control(self, msg: Message) -> None:
        kind, r = msg.payload
        if kind == "stag_token":
            if r not in self.rounds:
                self._take_checkpoint(r)
        elif kind == "stag_done":
            assert self.pid == self.runtime.coordinator
            self.broadcast_control(("stag_end", r), "END", nbytes=CTL_BYTES)
            self._end_round(r)
            self._round_active = False
        elif kind == "stag_end":
            self._end_round(r)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown control payload {msg.payload!r}")

    def _end_round(self, r: int) -> None:
        st = self.rounds.get(r)
        if st is None or st.complete:
            return
        st.logging = False
        st.completed_at = self.sim.now
        self.trace("ckpt.finalize", csn=r, reason="stag.end",
                   log_msgs=len(st.logged_uids), log_bytes=st.log_bytes)
        # Flush the sender-side log (Vaidya's logical-checkpoint payload).
        self.runtime.storage.write(self.pid, st.log_bytes,
                                   label=f"stag-log:{self.pid}:{r}")
        space = self.runtime.storage.space
        space.retain(self.pid, f"log:{r}", st.log_bytes, self.sim.now)
        # Round end certifies every process checkpointed round r: the
        # generation before the previous one is obsolete.
        if r >= 2:
            space.release(self.pid, f"state:{r - 2}", self.sim.now)
            space.release(self.pid, f"log:{r - 2}", self.sim.now)

    # -- sender-side logging -----------------------------------------------------------

    def on_app_sent(self, msg: Message) -> None:
        for st in self.rounds.values():
            if st.logging and not st.complete:
                st.logged_uids.append(msg.uid)
                st.log_bytes += msg.total_bytes

    # -- verification ---------------------------------------------------------------------

    def round_record(self, r: int) -> CheckpointRecord:
        """Verification record incl. the sender-side log for one round."""
        st = self.rounds[r]
        return self.prefix_record(
            seq=r, taken_at=st.taken_at, finalized_at=st.completed_at,
            smark=st.smark, rmark=st.rmark,
            extra_sent=tuple(st.logged_uids),
            state_bytes=self.runtime.state_bytes, log_bytes=st.log_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaggeredHost(P{self.pid}, rounds={sorted(self.rounds)})"
