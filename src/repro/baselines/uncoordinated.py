"""Fully asynchronous (uncoordinated) checkpointing, with optional logging.

The paper's §1 opening act: processes checkpoint independently, with zero
coordination cost — and pay for it at recovery time with the **domino
effect**.  Optionally, receivers log every delivered application message
(Johnson-Zwaenepoel-style optimistic logging [4]), which makes received
messages replayable and eliminates orphans, bounding rollback.

The host records, per checkpoint, its cut position and (when logging) the
set of logged uids; :mod:`repro.recovery` replays a failure against this
data via the recovery-line fixpoint to measure rollback distance and domino
depth — experiment E8's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..causality.recovery_line import IntervalMessage
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime


@dataclass(frozen=True)
class LocalCheckpoint:
    """One independent checkpoint at one process."""

    number: int           # 1, 2, ... (0 = implicit initial state)
    taken_at: float
    smark: int
    rmark: int


class UncoordinatedRuntime(BaselineRuntime):
    """Run context for independent checkpointing."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 log_messages: bool = False,
                 horizon: float | None = None) -> None:
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.log_messages = log_messages

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: UncoordinatedHost(pid, sim, rt, app),
            apps)

    # -- recovery-analysis surface ------------------------------------------------

    def interval_messages(self) -> list[IntervalMessage]:
        """Locate every delivered app message by its endpoints' checkpoint
        intervals (input to the recovery-line fixpoint)."""
        send_interval: dict[int, tuple[int, int]] = {}
        for pid, host in self.hosts.items():
            for i, uid in enumerate(host.sent_uids):
                send_interval[uid] = (pid, host.interval_of_send(i))
        out: list[IntervalMessage] = []
        for pid, host in self.hosts.items():
            for i, uid in enumerate(host.recv_uids):
                src, s_iv = send_interval[uid]
                out.append(IntervalMessage(
                    src=src, src_interval=s_iv, dst=pid,
                    dst_interval=host.interval_of_recv(i), uid=uid))
        return out

    def latest_checkpoint_numbers(self) -> dict[int, int]:
        """pid -> number of its most recent checkpoint (0 if none yet)."""
        return {pid: (host.checkpoints[-1].number if host.checkpoints else 0)
                for pid, host in self.hosts.items()}

    def logged_uids(self) -> set[int]:
        """All receiver-logged message uids (empty unless logging is on)."""
        out: set[int] = set()
        for host in self.hosts.values():
            out |= host.logged_uids
        return out


class UncoordinatedHost(BaselineHost):
    """One independently-checkpointing process."""

    def __init__(self, pid: int, sim: Simulator,
                 runtime: UncoordinatedRuntime, app: Any = None) -> None:
        super().__init__(pid, sim, runtime, app)
        self.checkpoints: list[LocalCheckpoint] = []
        self.logged_uids: set[int] = set()
        self.log_bytes = 0

    def protocol_start(self) -> None:
        self._arm()

    def _arm(self) -> None:
        rng = self.sim.rng.stream(f"uncoord.{self.pid}")
        delay = self.runtime.interval * float(rng.uniform(0.8, 1.2))
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + delay > horizon:
            return
        self.set_timeout(delay, self._checkpoint)

    def _checkpoint(self) -> None:
        smark, rmark = self.marks()
        ck = LocalCheckpoint(number=len(self.checkpoints) + 1,
                             taken_at=self.sim.now, smark=smark, rmark=rmark)
        self.checkpoints.append(ck)
        self.trace("ckpt.tentative", csn=ck.number,
                   bytes=self.runtime.state_bytes)
        self.take_checkpoint_write(self.runtime.state_bytes,
                                   label=f"async:{self.pid}:{ck.number}")
        # The domino effect can roll a process back to ANY of its
        # checkpoints, so none can be safely deleted — the storage-bloat
        # cost of uncoordinated checkpointing (paper §1, E13).
        self.runtime.storage.space.retain(
            self.pid, f"ckpt:{ck.number}", self.runtime.state_bytes,
            self.sim.now)
        self._arm()

    def on_app_message(self, msg: Message) -> None:
        if self.runtime.log_messages:
            self.logged_uids.add(msg.uid)
            self.log_bytes += msg.total_bytes
            # Async log flush: small sequential appends, modelled as writes.
            self.runtime.storage.write(self.pid, msg.total_bytes,
                                       label=f"mlog:{self.pid}")
            self.runtime.storage.space.retain(self.pid, "mlog",
                                              self.log_bytes, self.sim.now)

    def on_control(self, msg: Message) -> None:  # pragma: no cover - none sent
        raise ValueError("uncoordinated checkpointing sends no control messages")

    # -- interval lookups for recovery analysis -----------------------------------------

    def interval_of_send(self, sent_pos: int) -> int:
        """Checkpoint interval containing the ``sent_pos``-th send.

        Interval m = execution between checkpoint m and m+1; a send at list
        position p is in interval m where m = number of checkpoints whose
        ``smark`` is <= p.
        """
        return sum(1 for ck in self.checkpoints if ck.smark <= sent_pos)

    def interval_of_recv(self, recv_pos: int) -> int:
        """Checkpoint interval containing the ``recv_pos``-th receive."""
        return sum(1 for ck in self.checkpoints if ck.rmark <= recv_pos)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UncoordinatedHost(P{self.pid}, "
                f"ckpts={len(self.checkpoints)}, logged={len(self.logged_uids)})")
