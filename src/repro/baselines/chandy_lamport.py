"""Chandy-Lamport distributed snapshots [3] — the classic synchronous baseline.

Marker algorithm over **FIFO** channels (the paper's own system model is
non-FIFO; Chandy-Lamport is the reference point that *requires* FIFO, which
is why the comparison harness builds its network with ``fifo=True`` for this
protocol only):

* the coordinator starts round ``r`` by recording its state and sending a
  ``marker(r)`` on every outgoing channel;
* a process receiving its first ``marker(r)`` records its state, sends
  markers on all outgoing channels, and starts recording every incoming
  channel except the marker's;
* messages arriving on a still-recorded channel become *channel state*;
* the round completes at a process once markers arrived on all incoming
  channels; the recorded channel state is then flushed.

Cost profile (what the experiments show): every process records (and writes)
its state within one marker-latency of the initiation — the file-server
contention spike the paper's optimistic scheme avoids — and each round costs
``N·(N-1)`` markers on a complete graph.

Rounds may overlap in flight (markers of round ``r+1`` can overtake stale
round-``r`` markers on *other* channels), so per-round state is kept in a
:class:`SnapshotRound` table rather than scalar fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..causality.consistency import CheckpointRecord
from ..des.engine import Simulator
from ..net.message import Message
from .base import BaselineHost, BaselineRuntime

MARKER_BYTES = 8


@dataclass
class SnapshotRound:
    """Per-round snapshot state at one process."""

    round_id: int
    recorded_at: float
    smark: int
    rmark: int
    #: Channels (by peer pid) whose marker has not arrived yet.
    pending: set[int]
    #: uids of messages captured as channel state.
    channel_uids: list[int] = field(default_factory=list)
    channel_bytes: int = 0
    completed_at: float | None = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None


class ChandyLamportRuntime(BaselineRuntime):
    """Run context: coordinated rounds + verification surface."""

    def __init__(self, sim: Simulator, network, storage, *,
                 interval: float = 50.0, state_bytes: int = 1_000_000,
                 coordinator: int = 0, horizon: float | None = None) -> None:
        if not network.fifo:
            raise ValueError(
                "Chandy-Lamport requires FIFO channels; build the Network "
                "with fifo=True")
        super().__init__(sim, network, storage, horizon=horizon)
        self.interval = interval
        self.state_bytes = state_bytes
        self.coordinator = coordinator

    def build(self, apps: dict[int, Any] | None = None):
        return super().build(
            lambda pid, sim, rt, app: ChandyLamportHost(pid, sim, rt, app),
            apps)

    # -- verification ---------------------------------------------------------

    def complete_rounds(self) -> list[int]:
        """Rounds completed by every process."""
        common: set[int] | None = None
        for host in self.hosts.values():
            done = {r for r, st in host.rounds.items() if st.complete}
            common = done if common is None else common & done
        return sorted(common or ())

    def global_records(self) -> dict[int, dict[int, CheckpointRecord]]:
        """Per complete round: every process's CheckpointRecord."""
        out: dict[int, dict[int, CheckpointRecord]] = {}
        for r in self.complete_rounds():
            out[r] = {pid: host.round_record(r)
                      for pid, host in self.hosts.items()}
        return out


class ChandyLamportHost(BaselineHost):
    """One process of the Chandy-Lamport algorithm."""

    def __init__(self, pid: int, sim: Simulator,
                 runtime: ChandyLamportRuntime, app: Any = None) -> None:
        super().__init__(pid, sim, runtime, app)
        self.rounds: dict[int, SnapshotRound] = {}
        self._next_round = 1

    # -- round driving (coordinator only) -----------------------------------------

    def protocol_start(self) -> None:
        if self.pid == self.runtime.coordinator:
            self._arm_initiation()

    def _arm_initiation(self) -> None:
        horizon = self.runtime.horizon
        if horizon is not None and self.sim.now + self.runtime.interval > horizon:
            return
        self.set_timeout(self.runtime.interval, self._initiate)

    def _initiate(self) -> None:
        # Skip if our previous round has not completed (mirrors the paper's
        # one-round-at-a-time discipline for its own protocol).
        prev = self.rounds.get(self._next_round - 1)
        if prev is None or prev.complete or self._next_round == 1:
            r = self._next_round
            self._next_round += 1
            self._record_state(r, exclude_channel=None)
        self._arm_initiation()

    # -- marker handling ----------------------------------------------------------

    def _record_state(self, round_id: int, exclude_channel: int | None) -> None:
        """Record local state for ``round_id`` and emit markers."""
        smark, rmark = self.marks()
        pending = {p for p in range(self.runtime.n) if p != self.pid}
        if exclude_channel is not None:
            pending.discard(exclude_channel)
        st = SnapshotRound(round_id=round_id, recorded_at=self.sim.now,
                           smark=smark, rmark=rmark, pending=pending)
        self.rounds[round_id] = st
        self._next_round = max(self._next_round, round_id + 1)
        self.trace("ckpt.tentative", csn=round_id,
                   bytes=self.runtime.state_bytes)
        # The state write hits the file server *now* — all N processes do
        # this within one marker flood, which is the contention spike.
        self.take_checkpoint_write(self.runtime.state_bytes,
                                   label=f"cl:{self.pid}:{round_id}")
        self.runtime.storage.space.retain(
            self.pid, f"state:{round_id}", self.runtime.state_bytes,
            self.sim.now)
        for dst in range(self.runtime.n):
            if dst != self.pid:
                self.send_control(dst, ("marker", round_id), "MARKER",
                                  nbytes=MARKER_BYTES)
        if not st.pending:
            self._complete(st)

    def on_control(self, msg: Message) -> None:
        kind, round_id = msg.payload
        assert kind == "marker", f"unexpected control payload {msg.payload!r}"
        st = self.rounds.get(round_id)
        if st is None:
            # First marker of this round: record state; the marker's channel
            # carries no channel state (it was empty up to the marker).
            self._record_state(round_id, exclude_channel=msg.src)
        else:
            st.pending.discard(msg.src)
            if not st.pending and not st.complete:
                self._complete(st)

    def _complete(self, st: SnapshotRound) -> None:
        st.completed_at = self.sim.now
        self.trace("ckpt.finalize", csn=st.round_id,
                   log_msgs=len(st.channel_uids),
                   log_bytes=st.channel_bytes, reason="cl.markers")
        # Flush the recorded channel state (a second, usually small write).
        self.runtime.storage.write(self.pid, st.channel_bytes,
                                   label=f"cl-chan:{self.pid}:{st.round_id}")
        space = self.runtime.storage.space
        space.retain(self.pid, f"chan:{st.round_id}", st.channel_bytes,
                     self.sim.now)
        # Two-generation GC: completing round r certifies every process
        # recorded round r, so generations <= r-2 are obsolete.
        if st.round_id >= 2:
            space.release(self.pid, f"state:{st.round_id - 2}", self.sim.now)
            space.release(self.pid, f"chan:{st.round_id - 2}", self.sim.now)

    # -- channel-state capture -------------------------------------------------------

    def on_app_message(self, msg: Message) -> None:
        for st in self.rounds.values():
            if not st.complete and msg.src in st.pending:
                st.channel_uids.append(msg.uid)
                st.channel_bytes += msg.total_bytes

    # -- verification -------------------------------------------------------------------

    def round_record(self, round_id: int) -> CheckpointRecord:
        """Verification record of this process's snapshot for one round."""
        st = self.rounds[round_id]
        return self.prefix_record(
            seq=round_id, taken_at=st.recorded_at,
            finalized_at=st.completed_at, smark=st.smark, rmark=st.rmark,
            extra_recv=tuple(st.channel_uids),
            state_bytes=self.runtime.state_bytes,
            log_bytes=st.channel_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChandyLamportHost(P{self.pid}, "
                f"rounds={sorted(self.rounds)})")
