"""Baseline checkpointing protocols the paper compares against.

All baselines expose the same application surface as the optimistic host so
the harness can run identical workloads under every protocol:

* :mod:`~repro.baselines.chandy_lamport` — distributed snapshots [3];
* :mod:`~repro.baselines.koo_toueg` — blocking two-phase coordination [5];
* :mod:`~repro.baselines.staggered` — Plank/Vaidya staggered writes [10, 11];
* :mod:`~repro.baselines.cic_bcs` — communication-induced (index-based) [1, 8];
* :mod:`~repro.baselines.uncoordinated` — independent checkpoints (+ optional
  message logging) [4].
"""

from .base import BaselineHost, BaselineRuntime
from .chandy_lamport import ChandyLamportHost, ChandyLamportRuntime, SnapshotRound
from .cic_bcs import CicCheckpoint, CicHost, CicRuntime
from .koo_toueg import KooTouegHost, KooTouegRuntime
from .plank import PlankRound, PlankStaggeredHost, PlankStaggeredRuntime
from .manivannan_singhal import (
    ManivannanSinghalHost,
    ManivannanSinghalRuntime,
    MsCheckpoint,
)
from .staggered import StaggeredHost, StaggeredRuntime, StaggerRound
from .uncoordinated import (
    LocalCheckpoint,
    UncoordinatedHost,
    UncoordinatedRuntime,
)

__all__ = [
    "BaselineHost",
    "BaselineRuntime",
    "ChandyLamportHost",
    "ChandyLamportRuntime",
    "CicCheckpoint",
    "CicHost",
    "CicRuntime",
    "KooTouegHost",
    "KooTouegRuntime",
    "LocalCheckpoint",
    "ManivannanSinghalHost",
    "ManivannanSinghalRuntime",
    "MsCheckpoint",
    "PlankRound",
    "PlankStaggeredHost",
    "PlankStaggeredRuntime",
    "SnapshotRound",
    "StaggerRound",
    "StaggeredHost",
    "StaggeredRuntime",
    "UncoordinatedHost",
    "UncoordinatedRuntime",
]
