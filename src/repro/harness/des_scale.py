"""``repro bench des-scale`` — DES kernel throughput at scale.

ROADMAP item 1: the paper's overhead claims should be demonstrable at
"production" system sizes (hundreds to thousands of processes), not just
the n<=24 configs the executor bench sweeps.  This bench measures the
*simulation kernel itself*: one optimistic-protocol run per system size
n, recording executed events per wall-clock second and the peak event-heap
size.

Workload choice (deliberate): the **ring** application over a
**constant-latency** network.  Ring traffic is deterministic (no per
message RNG draws) and constant latency produces heavy same-instant
delivery bursts, so the measurement isolates the event-queue + protocol
hot path rather than numpy draw overhead — exactly the code the slotted
kernel refactor targets.  Tracing and verification are off (the zero-cost
obs contract is part of what is being measured).

The payload follows the shared ``repro.bench/1`` envelope
(:data:`repro.obs.BENCH_SCHEMA`), like ``BENCH_executor.json`` and
``BENCH_live.json``; ``validate_bench_payload`` accepts it unchanged.
Each point is sized to a roughly constant number of application messages
(``_MESSAGE_BUDGET``) so per-point wall time stays flat as n grows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Sequence

from .experiment import ExperimentConfig, build_experiment

#: Default system sizes; the acceptance sweep.  4096 is reachable via
#: ``repro bench des-scale --values 64,256,1024,4096``.
DEFAULT_NS = (64, 256, 1024)

#: Target application messages per point — keeps every point's wall time
#: in the same ballpark regardless of n (horizon scales as 1/n).
_MESSAGE_BUDGET = 40_000


def des_scale_config(n: int, seed: int = 0) -> ExperimentConfig:
    """The fixed per-point configuration (deterministic in ``(n, seed)``)."""
    # Each of the n processes sends one message per simulated second, so
    # horizon ~ budget/n yields ~budget messages; floor keeps small the
    # checkpoint machinery exercised even at n=4096.
    horizon = float(max(16, _MESSAGE_BUDGET // n))
    return ExperimentConfig(
        protocol="optimistic",
        n=n,
        seed=seed,
        horizon=horizon,
        latency="constant",
        latency_kwargs={"delay": 0.35},
        workload="ring",
        workload_kwargs={"period": 1.0, "msg_size": 256},
        checkpoint_interval=max(10.0, horizon / 8),
        timeout=max(4.0, horizon / 20),
        state_bytes=1_000_000,
        verify=False,
        trace_enabled=False,
    )


def bench_point(n: int, seed: int = 0, repeats: int = 2) -> dict[str, Any]:
    """Run one system size; best-of-``repeats`` wall time (runs are
    deterministic, so the minimum is the least scheduler-disturbed
    measurement of identical work)."""
    from ..obs.profile import wall_now
    cfg = des_scale_config(n, seed)
    best_wall = float("inf")
    events = 0
    peak_heap = 0
    completed = False
    messages = 0
    for _ in range(max(1, repeats)):
        sim, net, _storage, runtime = build_experiment(cfg)
        runtime.start()
        t0 = wall_now()
        sim.run(max_events=cfg.max_events)
        wall = wall_now() - t0
        best_wall = min(best_wall, wall)
        events = sim.executed
        peak_heap = max(getattr(sim, "peak_pending", sim.pending), 1)
        completed = sim.peek_time() is None
        messages = net.total_sent()
    return {
        "n": n,
        "horizon": cfg.horizon,
        "events": events,
        "messages": messages,
        "wall_seconds": round(best_wall, 4),
        "events_per_sec": round(events / best_wall, 1) if best_wall else None,
        "peak_heap": peak_heap,
        "completed": completed,
    }


def _tracing_overhead(n: int, seed: int) -> dict[str, Any]:
    """Traced-vs-untraced rerun at the smallest point: the obs zero-cost
    contract, measured by the same bench that depends on it."""
    from ..obs import MemorySink, Tracer
    from ..obs.profile import wall_now
    from .experiment import run_experiment
    cfg = des_scale_config(n, seed).derive(
        horizon=min(60.0, des_scale_config(n, seed).horizon),
        trace_enabled=True)

    t0 = wall_now()
    run_experiment(cfg)
    baseline_s = wall_now() - t0
    t0 = wall_now()
    run_experiment(cfg, tracer=Tracer([MemorySink()], host="harness"))
    traced_s = wall_now() - t0
    return {
        "baseline_seconds": round(baseline_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_frac": (round((traced_s - baseline_s) / baseline_s, 4)
                          if baseline_s > 0 else None),
    }


def bench_des_scale(ns: Sequence[int] = DEFAULT_NS, seed: int = 0,
                    out_path: str | Path | None = "BENCH_des_scale.json",
                    repeats: int = 2,
                    progress: Callable[[dict[str, Any]], None] | None = None,
                    ) -> dict[str, Any]:
    """Sweep the system sizes serially (measurement integrity: points are
    wall-clock measurements and must not contend); emit BENCH JSON."""
    from ..obs import BENCH_SCHEMA, MetricsRegistry
    points = []
    for n in ns:
        point = bench_point(n, seed=seed, repeats=repeats)
        points.append(point)
        if progress is not None:
            progress(point)
    registry = MetricsRegistry()
    for point in points:
        prefix = f"des_scale.n{point['n']}"
        registry.gauge(f"{prefix}.events_per_sec").set(
            point["events_per_sec"] or 0.0)
        registry.gauge(f"{prefix}.peak_heap").set(point["peak_heap"])
        registry.gauge(f"{prefix}.events").set(point["events"])
    ok = all(p["completed"] and (p["events_per_sec"] or 0) > 0
             for p in points)
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": "des-scale",
        "ok": ok,
        "config": {
            "ns": list(ns),
            "seed": seed,
            "repeats": repeats,
            "message_budget": _MESSAGE_BUDGET,
            "workload": "ring",
            "latency": "constant",
        },
        "metrics": registry.snapshot(),
        "tracing": _tracing_overhead(min(ns), seed) if ns else {
            "baseline_seconds": None, "traced_seconds": None,
            "overhead_frac": None},
        "points": points,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                  "utf-8")
    return payload
