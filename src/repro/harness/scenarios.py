"""Deterministic replays of the paper's illustrative figures.

The published evaluation numbers were omitted from the paper, but its three
narrative figures are exact event sequences — so we reproduce them exactly:

* :func:`fig1_scenario` — the consistency primer (§2.2, Figure 1): two time
  cuts over one message pattern, one consistent, one with orphan ``M_5``;
* :func:`fig2_scenario` — the basic algorithm walkthrough (§3.2, Figure 2):
  4 processes, ``M_1 … M_9``, with every tentative/finalize event and log
  content the text narrates (``C_{2,1} = CT_{2,1} ∪ {M_5, M_6}``, the
  ``M_8``/``M_9`` exclusions);
* :func:`fig5_scenario` — the control-message walkthrough (§3.5.1,
  Figure 5): a starved round rescued by ``CK_BGN → CK_REQ×3 → CK_END``,
  including the Case-(1) suppression at ``P_2`` and the Case-(2) skip of
  ``P_2`` in the ``CK_REQ`` chain.

Where the paper's figure leaves a sender unspecified (it is a drawing we
reconstruct from the prose), the choice here is the simplest one satisfying
every sentence of the narrative; the scenario docstrings note each choice.
All scenarios use constant 1-second latencies so the timelines are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..baselines.base import BaselineHost, BaselineRuntime
from ..causality.consistency import Orphan, cut_orphans
from ..core import MachineConfig, OptimisticConfig, OptimisticRuntime
from ..des.engine import Simulator
from ..net.latency import ConstantLatency
from ..net.network import Network
from ..net.topology import complete
from ..storage.stable_storage import StableStorage
from ..workload.scripted import InitiateAt, ScriptedApp, SendAt, tagged_uids


@dataclass
class ScenarioResult:
    """A finished scenario run with everything assertions need."""

    sim: Simulator
    network: Network
    storage: StableStorage
    runtime: Any
    apps: dict[int, ScriptedApp]
    #: paper message name ("M_2") -> message uid.
    tags: dict[str, int] = field(default_factory=dict)
    #: Scenario-specific extras (fig1 stores its cuts and orphan lists).
    extra: dict[str, Any] = field(default_factory=dict)


class PlainHost(BaselineHost):
    """A protocol-less host: plain application message passing.

    Used by the Figure 1 scenario, which is about *cuts over a computation*,
    not about any particular protocol.
    """

    def on_control(self, msg):  # pragma: no cover - nothing sends control
        raise ValueError("PlainHost expects no control messages")

    def initiate_checkpoint(self) -> bool:
        """Protocol-less host never initiates; returns False."""
        return False


def _run_optimistic_scripted(scripts: dict[int, list], n: int,
                             machine: MachineConfig,
                             timeout: float = 10.0) -> ScenarioResult:
    sim = Simulator(seed=0)
    net = Network(sim, complete(n), ConstantLatency(1.0))
    storage = StableStorage(sim)
    cfg = OptimisticConfig(checkpoint_interval=None, timeout=timeout,
                           state_bytes=1000, machine=machine)
    runtime = OptimisticRuntime(sim, net, storage, cfg)
    apps = {pid: ScriptedApp(scripts.get(pid, [])) for pid in range(n)}
    runtime.build(apps)
    runtime.start()
    sim.run(max_events=100_000)
    return ScenarioResult(sim=sim, network=net, storage=storage,
                          runtime=runtime, apps=apps,
                          tags=tagged_uids(apps))


def fig1_scenario() -> ScenarioResult:
    """Figure 1: global checkpoints as time cuts; S_1 consistent, S_2 not.

    Three processes exchange ``M_1 … M_6``; the cut ``S_2`` records the
    receive of ``M_5`` (at ``P_0``) but not its send (at ``P_1``) — the
    paper's canonical orphan.  The orphan lists are precomputed into
    ``extra['orphans_s1'] / extra['orphans_s2']``.
    """
    n = 3
    sim = Simulator(seed=0)
    net = Network(sim, complete(n), ConstantLatency(1.0))
    storage = StableStorage(sim)
    runtime = BaselineRuntime(sim, net, storage)
    scripts = {
        0: [SendAt(1.0, 1, "M_1"), SendAt(7.0, 2, "M_4")],
        1: [SendAt(3.0, 2, "M_2"), SendAt(9.0, 0, "M_5")],
        2: [SendAt(5.0, 1, "M_3"), SendAt(11.0, 1, "M_6")],
    }
    apps = {pid: ScriptedApp(scripts[pid]) for pid in range(n)}
    runtime.build(lambda pid, s, rt, app: PlainHost(pid, s, rt, app), apps)
    runtime.start()
    sim.run(max_events=10_000)
    cut_s1 = {0: 8.5, 1: 9.5, 2: 8.5}
    cut_s2 = {0: 10.5, 1: 8.5, 2: 8.5}
    result = ScenarioResult(sim=sim, network=net, storage=storage,
                            runtime=runtime, apps=apps,
                            tags=tagged_uids(apps))
    result.extra["cut_s1"] = cut_s1
    result.extra["cut_s2"] = cut_s2
    result.extra["orphans_s1"] = cut_orphans(cut_s1, sim.trace)
    result.extra["orphans_s2"] = cut_orphans(cut_s2, sim.trace)
    return result


def fig2_scenario() -> ScenarioResult:
    """Figure 2: the basic algorithm, no control messages.

    Timeline (constant 1 s latency; arrivals are send + 1):

    ====  ==============  =======================================================
    t     event           paper narrative
    ====  ==============  =======================================================
    1     M_1: P1 -> P0   both normal — no protocol action
    10    P0 initiates    ``CT_{0,1}``
    11    M_2: P0 -> P1   P1 takes ``CT_{1,1}`` at 12
    13    M_3: P1 -> P3   P3 takes ``CT_{3,1}`` at 14 (knows {P0, P1})
    13    M_4: P0 -> P2   P2 takes ``CT_{2,1}`` at 14 (knows {P0, P2})
    15    M_6: P2 -> P1   logged by P2 (sent tentative); P1 learns {P0,P1,P2}
    16    M_5: P3 -> P2   P2 learns all-tentative at 17 ⇒ finalizes
                          ``C_{2,1} = CT_{2,1} ∪ {M_5, M_6}``
    18    M_7: P2 -> P1   P2 now normal ⇒ P1 finalizes at 19 (M_7 excluded)
    20    M_8: P1 -> P3   P1 normal ⇒ P3 finalizes at 21, **M_8 excluded**
    22    M_9: P3 -> P0   P3 normal ⇒ P0 finalizes at 23, **M_9 excluded**
    ====  ==============  =======================================================

    The paper's figure does not label M_4/M_6/M_7/M_9's endpoints in prose;
    the choices above satisfy every narrated fact (who takes/finalizes when,
    and C_{2,1}'s exact log).
    """
    scripts = {
        0: [InitiateAt(10.0), SendAt(11.0, 1, "M_2"), SendAt(13.0, 2, "M_4")],
        1: [SendAt(1.0, 0, "M_1"), SendAt(13.0, 3, "M_3"),
            SendAt(20.0, 3, "M_8")],
        2: [SendAt(15.0, 1, "M_6"), SendAt(18.0, 1, "M_7")],
        3: [SendAt(16.0, 2, "M_5"), SendAt(22.0, 0, "M_9")],
    }
    machine = MachineConfig(control_messages=False)
    return _run_optimistic_scripted(scripts, n=4, machine=machine)


def fig5_scenario(timeout: float = 10.0) -> ScenarioResult:
    """Figure 5: convergence rescued by control messages.

    Timeline (constant 1 s latency):

    ====  =====================  ================================================
    t     event                  paper narrative
    ====  =====================  ================================================
    1     M_1: P0 -> P1          normal traffic
    2     M_5: P3 -> P0          P3 "sends out messages ... does not receive any"
    3.5   M_6: P3 -> P2          likewise
    5     P1 initiates           ``CT_{1,1}``; convergence timer armed
    6     M_2: P1 -> P2          P2 takes ``CT_{2,1}`` at 7
    8     M_3: P2 -> P1          P1 learns {P1, P2}
    15    P1 timer expires       sends ``CK_BGN_1`` to P0 (P2 stays silent:
                                 Case-(1) suppression, P1 ∈ tentSet_2)
    16    P0 gets CK_BGN         takes ``CT_{0,1}``, sends ``CK_REQ_1`` to P1
    17    P1 gets CK_REQ         skips P2 (Case (2)), ``CK_REQ_2`` to P3
    18    P3 gets CK_REQ         takes ``CT_{3,1}``, ``CK_REQ_3`` back to P0
    19    P0 gets CK_REQ         broadcasts ``CK_END``, finalizes ``C_{0,1}``
    20    CK_END delivered       P1, P2, P3 finalize
    ====  =====================  ================================================
    """
    scripts = {
        0: [SendAt(1.0, 1, "M_1")],
        1: [InitiateAt(5.0), SendAt(6.0, 2, "M_2")],
        2: [SendAt(8.0, 1, "M_3")],
        3: [SendAt(2.0, 0, "M_5"), SendAt(3.5, 2, "M_6")],
    }
    machine = MachineConfig(control_messages=True, suppress_ck_bgn=True,
                            skip_ck_req=True)
    return _run_optimistic_scripted(scripts, n=4, machine=machine,
                                    timeout=timeout)


def fig5_scenario_without_control() -> ScenarioResult:
    """Figure 5's counterfactual: the same run with control disabled.

    The paper: "Without these control messages, the original algorithm does
    not converge in this example" — the round stays unfinalized forever.
    """
    scripts = {
        0: [SendAt(1.0, 1, "M_1")],
        1: [InitiateAt(5.0), SendAt(6.0, 2, "M_2")],
        2: [SendAt(8.0, 1, "M_3")],
        3: [SendAt(2.0, 0, "M_5"), SendAt(3.5, 2, "M_6")],
    }
    machine = MachineConfig(control_messages=False)
    return _run_optimistic_scripted(scripts, n=4, machine=machine)
