"""Statistical replication: run a configuration across many seeds.

Single-seed results can mislead (a lucky workload, a pathological phase
alignment); the replication harness runs one configuration under a seed
batch and reports each metric as mean ± a Student-t confidence interval —
the form a paper's table would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..api import RunOutcome
from ..metrics.report import Table
from .executor import (
    ProgressArg,
    ResultCache,
    RunSummary,
    raise_failures,
    run_many,
)
from .experiment import ExperimentConfig, RunResult, run_experiment


@dataclass(frozen=True)
class MetricCI:
    """Mean with a two-sided confidence interval."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def confidence_interval(values: Sequence[float],
                        confidence: float = 0.95) -> MetricCI:
    """Student-t CI of the mean (half-width 0 for n<2 or zero variance)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    mean = float(arr.mean())
    if arr.size < 2 or float(arr.std(ddof=1)) == 0.0:
        return MetricCI(mean=mean, half_width=0.0, n=int(arr.size),
                        confidence=confidence)
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t = float(stats.t.ppf((1 + confidence) / 2, df=arr.size - 1))
    return MetricCI(mean=mean, half_width=t * sem, n=int(arr.size),
                    confidence=confidence)


def replicate(cfg: ExperimentConfig, seeds: Sequence[int],
              jobs: int = 1, cache: ResultCache | None = None,
              progress: ProgressArg = None
              ) -> list[RunOutcome]:
    """Run ``cfg`` once per seed.

    With ``jobs > 1`` or a ``cache`` the batch fans out through
    :func:`repro.harness.executor.run_many` and returns picklable
    :class:`RunSummary` objects (identical metrics to the serial live
    :class:`RunResult` path; a failed seed raises with its traceback).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    configs = [cfg.derive(seed=int(s)) for s in seeds]
    if jobs <= 1 and cache is None:
        return [run_experiment(c) for c in configs]
    outcomes = run_many(configs, jobs=jobs, cache=cache, progress=progress)
    raise_failures(outcomes)
    return [o for o in outcomes if isinstance(o, RunSummary)]


def replication_summary(results: Sequence[RunOutcome],
                        metrics: Sequence[str],
                        confidence: float = 0.95) -> dict[str, MetricCI]:
    """Per-metric CI over a replication batch.

    ``metrics`` are keys of ``RunMetrics.as_dict()``.
    """
    out: dict[str, MetricCI] = {}
    for metric in metrics:
        values = [float(r.metrics.as_dict()[metric]) for r in results]
        out[metric] = confidence_interval(values, confidence=confidence)
    return out


def replication_table(summaries: dict[str, dict[str, MetricCI]],
                      metrics: Sequence[str], title: str = "") -> Table:
    """Rows = configurations (e.g. protocols), cells = ``mean ± hw``."""
    t = Table("configuration", *metrics, title=title)
    for name, summary in summaries.items():
        t.add_row(name, *(str(summary[m]) for m in metrics))
    return t
