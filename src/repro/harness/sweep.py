"""Parameter sweeps.

A sweep varies one configuration field over a value list, optionally under
several protocols, producing the (x, series...) data behind every
figure-style experiment.  Seeds are derived per sweep point (base seed +
point index) so points are independent samples, while all protocols at one
point share the seed and hence the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..metrics.report import Table
from .experiment import ExperimentConfig, RunResult, run_experiment


@dataclass
class SweepPoint:
    """All protocol results at one parameter value."""

    value: Any
    results: dict[str, RunResult] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A completed sweep."""

    param: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, protocol: str,
               metric: Callable[[RunResult], Any] | str
               ) -> tuple[list[Any], list[Any]]:
        """Extract (xs, ys) for one protocol and one metric.

        ``metric`` is either a callable over :class:`RunResult` or a key of
        ``RunMetrics.as_dict()``.
        """
        if isinstance(metric, str):
            key = metric
            metric = lambda r: r.metrics.as_dict().get(key)  # noqa: E731
        xs, ys = [], []
        for pt in self.points:
            if protocol in pt.results:
                xs.append(pt.value)
                ys.append(metric(pt.results[protocol]))
        return xs, ys

    def table(self, metric: str, title: str = "") -> Table:
        """Render one metric across all protocols as a value-rows table."""
        protocols = sorted({p for pt in self.points for p in pt.results})
        t = Table(self.param, *protocols, title=title or metric)
        for pt in self.points:
            t.add_row(pt.value,
                      *(pt.results[p].metrics.as_dict().get(metric, "")
                        if p in pt.results else ""
                        for p in protocols))
        return t


def _set_param(cfg: ExperimentConfig, param: str,
               value: Any) -> ExperimentConfig:
    """Set a (possibly dotted) config field, e.g. ``workload_kwargs.rate``."""
    if "." in param:
        head, key = param.split(".", 1)
        current = dict(getattr(cfg, head))
        current[key] = value
        return cfg.derive(**{head: current})
    return cfg.derive(**{param: value})


def sweep(base: ExperimentConfig, param: str, values: Sequence[Any],
          protocols: Sequence[str] = ("optimistic",),
          reseed: bool = True) -> SweepResult:
    """Run the sweep; each point gets seed ``base.seed + index`` if ``reseed``."""
    result = SweepResult(param=param)
    for i, value in enumerate(values):
        cfg = _set_param(base, param, value)
        if reseed:
            cfg = cfg.derive(seed=base.seed + i)
        point = SweepPoint(value=value)
        for name in protocols:
            point.results[name] = run_experiment(cfg.derive(protocol=name))
        result.points.append(point)
    return result
