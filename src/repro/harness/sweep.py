"""Parameter sweeps.

A sweep varies one configuration field over a value list, optionally under
several protocols, producing the (x, series...) data behind every
figure-style experiment.  Seeds are derived per sweep point (base seed +
point index) so points are independent samples, while all protocols at one
point share the seed and hence the workload.  Sweeping ``seed`` itself
disables that derivation — the swept values *are* the seeds.

``jobs``/``cache`` route the runs through
:mod:`repro.harness.executor`: points fan out over a worker pool and/or
memoise on disk, with results landing as picklable
:class:`~repro.harness.executor.RunSummary` objects instead of live
:class:`RunResult`\\ s (identical metrics either way — runs are
deterministic in their configs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..api import RunOutcome
from ..metrics.report import Table
from .executor import (
    ProgressArg,
    ResultCache,
    RunSummary,
    raise_failures,
    run_many,
)
from .experiment import ExperimentConfig, RunResult, run_experiment


@dataclass
class SweepPoint:
    """All protocol results at one parameter value."""

    value: Any
    results: dict[str, RunOutcome] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A completed sweep."""

    param: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, protocol: str,
               metric: Callable[[RunOutcome], Any] | str
               ) -> tuple[list[Any], list[Any]]:
        """Extract (xs, ys) for one protocol and one metric.

        ``metric`` is either a callable over the per-run result
        (:class:`RunResult` or :class:`RunSummary`) or a key of
        ``RunMetrics.as_dict()``.
        """
        if isinstance(metric, str):
            key = metric
            metric = lambda r: r.metrics.as_dict().get(key)  # noqa: E731
        xs, ys = [], []
        for pt in self.points:
            if protocol in pt.results:
                xs.append(pt.value)
                ys.append(metric(pt.results[protocol]))
        return xs, ys

    def table(self, metric: str, title: str = "") -> Table:
        """Render one metric across all protocols as a value-rows table."""
        protocols = sorted({p for pt in self.points for p in pt.results})
        t = Table(self.param, *protocols, title=title or metric)
        for pt in self.points:
            t.add_row(pt.value,
                      *(pt.results[p].metrics.as_dict().get(metric, "")
                        if p in pt.results else ""
                        for p in protocols))
        return t


def _set_param(cfg: ExperimentConfig, param: str,
               value: Any) -> ExperimentConfig:
    """Set a (possibly dotted) config field, e.g. ``workload_kwargs.rate``."""
    if "." in param:
        head, key = param.split(".", 1)
        current = dict(getattr(cfg, head))
        current[key] = value
        return cfg.derive(**{head: current})
    return cfg.derive(**{param: value})


def sweep(base: ExperimentConfig, param: str, values: Sequence[Any],
          protocols: Sequence[str] = ("optimistic",),
          reseed: bool = True, jobs: int = 1,
          cache: ResultCache | None = None,
          progress: ProgressArg = None) -> SweepResult:
    """Run the sweep; each point gets seed ``base.seed + index`` if ``reseed``.

    Sweeping ``param="seed"`` never reseeds — the swept values must win
    (reseeding would silently clobber every point with ``base.seed + i``).
    With ``jobs > 1`` or a ``cache``, runs go through
    :func:`repro.harness.executor.run_many` and results are
    :class:`RunSummary` (any failed run raises with its traceback);
    otherwise the serial path returns live :class:`RunResult` objects.
    """
    result = SweepResult(param=param)
    configs: list[ExperimentConfig] = []
    slots: list[tuple[int, str]] = []
    for i, value in enumerate(values):
        cfg = _set_param(base, param, value)
        if reseed and param != "seed":
            cfg = cfg.derive(seed=base.seed + i)
        result.points.append(SweepPoint(value=value))
        for name in protocols:
            configs.append(cfg.derive(protocol=name))
            slots.append((i, name))
    if jobs <= 1 and cache is None:
        for (i, name), cfg in zip(slots, configs):
            result.points[i].results[name] = run_experiment(cfg)
    else:
        outcomes = run_many(configs, jobs=jobs, cache=cache,
                            progress=progress)
        raise_failures(outcomes)
        for (i, name), outcome in zip(slots, outcomes):
            assert isinstance(outcome, RunSummary)
            result.points[i].results[name] = outcome
    return result
