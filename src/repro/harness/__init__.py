"""Experiment harness: configs, runs, comparisons, sweeps, figure scenarios.

Batch execution (:func:`run_many`), the on-disk result cache
(:class:`ResultCache`) and the executor benchmark (:func:`bench_executor`)
live in :mod:`repro.harness.executor`; ``sweep``/``compare``/``replicate``
take ``jobs=``/``cache=`` and route through it.
"""

from .comparison import (
    DEFAULT_COLUMNS,
    DEFAULT_PROTOCOLS,
    assert_all_consistent,
    compare,
    comparison_table,
)
from .executor import (
    ResultCache,
    RunFailure,
    RunSummary,
    bench_executor,
    config_key,
    failures,
    map_jobs,
    raise_failures,
    run_many,
)
from .experiment import (
    LATENCIES,
    PROTOCOLS,
    TOPOLOGIES,
    ExperimentConfig,
    ProtocolSpec,
    RunResult,
    build_experiment,
    register_protocol,
    run_experiment,
)
from .scenarios import (
    PlainHost,
    ScenarioResult,
    fig1_scenario,
    fig2_scenario,
    fig5_scenario,
    fig5_scenario_without_control,
)
from .replicate import (
    MetricCI,
    confidence_interval,
    replicate,
    replication_summary,
    replication_table,
)
from .sweep import SweepPoint, SweepResult, sweep

__all__ = [
    "DEFAULT_COLUMNS",
    "DEFAULT_PROTOCOLS",
    "ExperimentConfig",
    "LATENCIES",
    "MetricCI",
    "PROTOCOLS",
    "PlainHost",
    "ProtocolSpec",
    "ResultCache",
    "RunFailure",
    "RunResult",
    "RunSummary",
    "ScenarioResult",
    "SweepPoint",
    "SweepResult",
    "TOPOLOGIES",
    "assert_all_consistent",
    "bench_executor",
    "build_experiment",
    "compare",
    "comparison_table",
    "config_key",
    "confidence_interval",
    "failures",
    "map_jobs",
    "raise_failures",
    "run_many",
    "replicate",
    "replication_summary",
    "replication_table",
    "fig1_scenario",
    "fig2_scenario",
    "fig5_scenario",
    "fig5_scenario_without_control",
    "register_protocol",
    "run_experiment",
    "sweep",
]
