"""Experiment harness: configs, runs, comparisons, sweeps, figure scenarios."""

from .comparison import (
    DEFAULT_COLUMNS,
    DEFAULT_PROTOCOLS,
    assert_all_consistent,
    compare,
    comparison_table,
)
from .experiment import (
    LATENCIES,
    PROTOCOLS,
    TOPOLOGIES,
    ExperimentConfig,
    ProtocolSpec,
    RunResult,
    build_experiment,
    register_protocol,
    run_experiment,
)
from .scenarios import (
    PlainHost,
    ScenarioResult,
    fig1_scenario,
    fig2_scenario,
    fig5_scenario,
    fig5_scenario_without_control,
)
from .replicate import (
    MetricCI,
    confidence_interval,
    replicate,
    replication_summary,
    replication_table,
)
from .sweep import SweepPoint, SweepResult, sweep

__all__ = [
    "DEFAULT_COLUMNS",
    "DEFAULT_PROTOCOLS",
    "ExperimentConfig",
    "LATENCIES",
    "MetricCI",
    "PROTOCOLS",
    "PlainHost",
    "ProtocolSpec",
    "RunResult",
    "ScenarioResult",
    "SweepPoint",
    "SweepResult",
    "TOPOLOGIES",
    "assert_all_consistent",
    "build_experiment",
    "compare",
    "comparison_table",
    "confidence_interval",
    "replicate",
    "replication_summary",
    "replication_table",
    "fig1_scenario",
    "fig2_scenario",
    "fig5_scenario",
    "fig5_scenario_without_control",
    "register_protocol",
    "run_experiment",
    "sweep",
]
