"""Protocol-matrix comparisons over identical workloads.

``compare`` runs the same :class:`~repro.harness.experiment.ExperimentConfig`
under several protocols with the *same seed* (so the workloads' RNG streams
produce identical application traffic) and returns one
:class:`~repro.harness.experiment.RunResult` per protocol.

``comparison_table`` turns those results into the standard protocol-rows
table the benchmarks print.
"""

from __future__ import annotations

from typing import Sequence

from ..api import RunOutcome
from ..metrics.report import Table
from .executor import (
    ProgressArg,
    ResultCache,
    RunSummary,
    raise_failures,
    run_many,
)
from .experiment import ExperimentConfig, RunResult, run_experiment

#: The default protocol matrix (uncoordinated excluded: its costs are only
#: meaningful through the recovery analysis, not through round metrics).
DEFAULT_PROTOCOLS = (
    "optimistic",
    "chandy-lamport",
    "koo-toueg",
    "staggered",
    "cic-bcs",
)

#: Default columns of a comparison table; keys into RunMetrics.as_dict().
DEFAULT_COLUMNS = (
    "peak_pending_writers",
    "mean_wait",
    "max_wait",
    "ctl_messages",
    "piggyback_bytes",
    "checkpoints",
    "rounds_completed",
    "blocked_time",
    "max_response_delay",
)


def compare(cfg: ExperimentConfig,
            protocols: Sequence[str] = DEFAULT_PROTOCOLS,
            jobs: int = 1, cache: ResultCache | None = None,
            progress: ProgressArg = None
            ) -> dict[str, RunOutcome]:
    """Run ``cfg`` under each protocol (same seed ⇒ same app traffic).

    With ``jobs > 1`` or a ``cache`` the runs go through
    :func:`repro.harness.executor.run_many` and the values are picklable
    :class:`RunSummary` objects (identical metrics to the serial live
    :class:`RunResult` path; a failed run raises with its traceback).
    """
    if jobs <= 1 and cache is None:
        out: dict[str, RunOutcome] = {}
        for name in protocols:
            out[name] = run_experiment(cfg.derive(protocol=name))
        return out
    outcomes = run_many([cfg.derive(protocol=name) for name in protocols],
                        jobs=jobs, cache=cache, progress=progress)
    raise_failures(outcomes)
    return {name: outcome for name, outcome in zip(protocols, outcomes)
            if isinstance(outcome, RunSummary)}


def comparison_table(results: dict[str, RunOutcome],
                     columns: Sequence[str] = DEFAULT_COLUMNS,
                     title: str = "") -> Table:
    """Protocol-rows table over selected metric columns."""
    table = Table("protocol", *columns, title=title)
    for name, res in results.items():
        row = res.metrics.as_dict()
        table.add_row(name, *(row.get(c, "") for c in columns))
    return table


def assert_all_consistent(results: dict[str, RunOutcome]
                          ) -> None:
    """Every verified cut of every protocol must be orphan-free."""
    for name, res in results.items():
        bad = {seq: c for seq, c in res.orphans.items() if c}
        assert not bad, f"{name}: orphaned cuts {bad}"
