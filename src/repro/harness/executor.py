"""Parallel experiment execution with an on-disk result cache.

``run_many`` fans a batch of independent :class:`ExperimentConfig`s out
over a ``multiprocessing`` worker pool.  Workers are spawn-safe: a config
is picklable and fully determines its run, so each worker rebuilds the
simulation from scratch and ships back a slim :class:`RunSummary` (config
+ flat metrics + orphan counts) instead of the live :class:`RunResult`
object graph, which holds an entire simulator and cannot cross a process
boundary.  A crashed worker is captured as a :class:`RunFailure` carrying
the config and traceback rather than killing the batch.

Because every run is deterministic in its config (seeded RNG streams, no
wall-clock reads — enforced by ``repro verify --lint``), results can be
memoised on disk: :class:`ResultCache` keys each summary by a stable hash
of the config, so repeated sweeps skip already-completed points and any
config change (or cache-format bump) is automatically a miss.

``bench_executor`` runs the same fixed sweep serially and in parallel and
writes ``BENCH_executor.json`` — the start of the perf trajectory for the
harness itself.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import queue as queue_mod
import sys
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

# Private alias: the canonical flat-dict adapter lives in repro.api (one
# RunOutcome surface for every host — see docs/API.md).  The PR-4 era
# ``repro.harness.executor.MetricsView`` re-export is retired; import it
# from ``repro.api``.
from ..api import MetricsView as _MetricsView
from .experiment import ExperimentConfig, RunResult, run_experiment

#: Bump to invalidate every cached summary (format or semantics change).
CACHE_VERSION = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Progress is either off (None/False), on (True → stderr lines), or a
#: callable ``(done, total, outcome)``.
ProgressArg = Any


@dataclass
class RunSummary:
    """Picklable reduction of a :class:`RunResult` (no live objects).

    Carries exactly what the harness consumers (sweep tables, comparison
    tables, replication summaries) read: the config, the flat
    ``RunMetrics.as_dict()`` record, the orphan counts, and the
    truncation flag.
    """

    config: ExperimentConfig
    metrics_dict: dict[str, Any]
    orphans: dict[int, int] = field(default_factory=dict)
    truncated: bool = False
    #: True when this summary was served from a :class:`ResultCache`.
    cached: bool = False

    @property
    def metrics(self) -> "_MetricsView":
        """Duck-typed ``RunMetrics`` surface (``.as_dict()``, flat attrs)."""
        return _MetricsView(self.metrics_dict)

    @property
    def consistent(self) -> bool:
        """Every verified global checkpoint is orphan-free."""
        return all(v == 0 for v in self.orphans.values())

    @property
    def ok(self) -> bool:
        """Acceptance (RunOutcome): consistent and ran to quiescence."""
        return self.consistent and not self.truncated

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready outcome record (the RunOutcome surface)."""
        return {
            "protocol": self.config.protocol,
            "n": self.config.n,
            "seed": self.config.seed,
            "ok": self.ok,
            "consistent": self.consistent,
            "truncated": self.truncated,
            "orphans": {str(k): v for k, v in sorted(self.orphans.items())},
            "metrics": dict(self.metrics_dict),
        }

    @classmethod
    def from_result(cls, result: RunResult) -> "RunSummary":
        """Reduce a live :class:`RunResult` to its picklable summary."""
        return cls(config=result.config,
                   metrics_dict=result.metrics.as_dict(),
                   orphans=dict(result.orphans),
                   truncated=result.truncated)


@dataclass
class RunFailure:
    """A run that raised: the config plus the worker's traceback."""

    config: ExperimentConfig
    error: str
    traceback: str

    def __str__(self) -> str:
        return (f"{self.config.protocol} (n={self.config.n}, "
                f"seed={self.config.seed}): {self.error}")


@dataclass
class JobError:
    """A generic :func:`map_jobs` item that raised."""

    item: Any
    error: str
    traceback: str


@dataclass
class JobCancelled:
    """A :func:`map_jobs` item never dispatched: the batch was cancelled.

    Cooperative cancellation (``cancel_event``) stops *dispatching*;
    items already in flight finish normally and keep their real
    outcomes, so a cancelled batch still reports partial results.
    """

    item: Any


# -- cache ---------------------------------------------------------------------


def config_key(cfg: ExperimentConfig, *, salt: str = "") -> str:
    """Stable content hash of a config (+ optional salt/namespace).

    Any field change produces a different key; bumping
    :data:`CACHE_VERSION` invalidates everything at once.
    """
    payload = {"version": CACHE_VERSION, "salt": salt, "config": asdict(cfg)}
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """On-disk memo of finished runs under ``.repro-cache/``.

    One JSON file per key; writes are atomic (tmp file + rename) so a
    crashed run never leaves a truncated entry behind.  Unreadable or
    version-mismatched entries read as misses.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """The on-disk location of one entry."""
        return self.root / f"{key}.json"

    # Generic JSON payloads (used by e.g. the recovery table cache) -----

    def load_json(self, key: str) -> dict[str, Any] | None:
        """A raw cached payload, or None on miss/corruption/version skew."""
        try:
            payload = json.loads(self.path_for(key).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("version") != CACHE_VERSION:
            return None
        return payload

    def store_json(self, key: str, payload: dict[str, Any]) -> None:
        """Atomically write a raw payload (version stamp added)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, **payload}
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1,
                                  default=repr), "utf-8")
        tmp.replace(path)

    # Run summaries -----------------------------------------------------

    def load(self, cfg: ExperimentConfig) -> RunSummary | None:
        """The cached summary for ``cfg``, or None on a miss."""
        payload = self.load_json(config_key(cfg))
        if payload is None or "metrics" not in payload:
            return None
        return RunSummary(
            config=cfg,
            metrics_dict=dict(payload["metrics"]),
            orphans={int(k): int(v)
                     for k, v in payload.get("orphans", {}).items()},
            truncated=bool(payload.get("truncated", False)),
            cached=True)

    def store(self, summary: RunSummary) -> None:
        """Memoise a finished run under its config hash."""
        self.store_json(config_key(summary.config), {
            "config": asdict(summary.config),
            "metrics": summary.metrics_dict,
            "orphans": {str(k): v for k, v in summary.orphans.items()},
            "truncated": summary.truncated,
        })

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


# -- generic parallel map ------------------------------------------------------


def _invoke(payload: tuple[Callable[[Any], Any], int, Any]
            ) -> tuple[int, Any]:
    """Top-level worker shim (picklable under spawn): capture, don't die."""
    fn, index, item = payload
    try:
        return index, fn(item)
    except Exception as exc:  # noqa: BLE001 - failures travel as values
        return index, JobError(item=item, error=repr(exc),
                               traceback=traceback.format_exc())


def map_jobs(fn: Callable[[Any], Any], items: Sequence[Any],
             jobs: int = 1,
             on_result: Callable[[int, Any], None] | None = None,
             cancel_event: "threading.Event | None" = None) -> list[Any]:
    """Order-preserving map with per-item failure capture.

    ``jobs <= 1`` (or a single item) runs inline — byte-identical to the
    parallel path because items are independent and ``fn`` is
    deterministic; ``jobs > 1`` fans out over a spawn-context pool.  An
    item whose ``fn`` raises yields a :class:`JobError` in its slot
    instead of aborting the batch.  ``on_result(index, outcome)`` fires
    as each item completes (completion order, not input order).

    ``cancel_event`` (a :class:`threading.Event`, settable from any
    thread) requests *cooperative* cancellation: no further item is
    dispatched once it is set, in-flight workers drain normally, and
    every undispatched item yields a :class:`JobCancelled` in its slot —
    so the caller always gets one outcome per item and can tell partial
    results from losses.
    """
    items = list(items)
    out: list[Any] = [None] * len(items)
    payloads = [(fn, i, item) for i, item in enumerate(items)]

    def cancelled() -> bool:
        return cancel_event is not None and cancel_event.is_set()

    def finish(index: int, outcome: Any) -> None:
        out[index] = outcome
        if on_result is not None:
            on_result(index, outcome)

    if jobs <= 1 or len(items) <= 1:
        for payload in payloads:
            if cancelled():
                finish(payload[1], JobCancelled(item=payload[2]))
                continue
            finish(*_invoke(payload))
        return out
    # Wave dispatch: at most ``jobs`` payloads are submitted at a time,
    # the next one going out only as a result comes back — the window
    # that makes stop-dispatching-on-cancel possible (imap would ship
    # the whole batch to the pool up front).
    ctx = mp.get_context("spawn")
    results: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    with ctx.Pool(processes=min(jobs, len(items))) as pool:

        def submit(payload: tuple[Callable[[Any], Any], int, Any]) -> None:
            pool.apply_async(_invoke, (payload,), callback=results.put,
                             error_callback=lambda exc, p=payload:
                             results.put((p[1], JobError(
                                 item=p[2], error=repr(exc),
                                 traceback=""))))

        next_up = 0
        in_flight = 0
        while next_up < len(items) and in_flight < jobs \
                and not cancelled():
            submit(payloads[next_up])
            next_up += 1
            in_flight += 1
        while in_flight:
            index, outcome = results.get()
            in_flight -= 1
            finish(index, outcome)
            if next_up < len(items) and not cancelled():
                submit(payloads[next_up])
                next_up += 1
                in_flight += 1
    for payload in payloads[next_up:]:
        finish(payload[1], JobCancelled(item=payload[2]))
    return out


# -- batch experiment execution ------------------------------------------------


def _run_one(cfg: ExperimentConfig) -> RunSummary:
    """Worker body: rebuild the simulation from the config, reduce."""
    return RunSummary.from_result(run_experiment(cfg))


def _outcome_tag(outcome: RunSummary | RunFailure) -> str:
    if isinstance(outcome, RunFailure):
        return "FAILED"
    return "cached" if outcome.cached else "ok"


def _emit_progress(progress: ProgressArg, done: int, total: int,
                   outcome: RunSummary | RunFailure) -> None:
    if not progress:
        return
    if callable(progress):
        progress(done, total, outcome)
        return
    cfg = outcome.config
    print(f"[{done}/{total}] {cfg.protocol} n={cfg.n} seed={cfg.seed} "
          f"... {_outcome_tag(outcome)}", file=sys.stderr)


def run_many(configs: Sequence[ExperimentConfig], jobs: int = 1,
             cache: ResultCache | None = None,
             progress: ProgressArg = None,
             cancel_event: "threading.Event | None" = None
             ) -> list[RunSummary | RunFailure]:
    """Run a batch of independent configs, optionally in parallel.

    Returns one outcome per completed config, in input order: a
    :class:`RunSummary` on success (``.cached`` marks cache hits) or a
    :class:`RunFailure` capturing the config and traceback.  The serial
    path (``jobs=1``) and the pool path produce identical summaries —
    runs are deterministic in their configs — so ``jobs`` is purely a
    wall-clock knob.

    ``cancel_event`` stops dispatch cooperatively (see
    :func:`map_jobs`): already-running configs drain and are cached as
    usual, undispatched ones are simply absent from the result — the
    cache is never left with a partial or torn entry, so a re-run picks
    up exactly where the cancelled batch stopped.
    """
    configs = list(configs)
    total = len(configs)
    out: list[RunSummary | RunFailure | None] = [None] * total
    pending: list[tuple[int, ExperimentConfig]] = []
    done = 0
    for i, cfg in enumerate(configs):
        hit = cache.load(cfg) if cache is not None else None
        if hit is not None:
            out[i] = hit
            done += 1
            _emit_progress(progress, done, total, hit)
        else:
            pending.append((i, cfg))

    def _finish(pos: int, outcome: Any) -> None:
        nonlocal done
        index, cfg = pending[pos]
        if isinstance(outcome, JobCancelled):
            return                     # undispatched: no slot, no cache
        if isinstance(outcome, JobError):
            outcome = RunFailure(config=cfg, error=outcome.error,
                                 traceback=outcome.traceback)
        elif cache is not None:
            cache.store(outcome)
        out[index] = outcome
        done += 1
        _emit_progress(progress, done, total, outcome)

    map_jobs(_run_one, [cfg for _, cfg in pending], jobs=jobs,
             on_result=_finish, cancel_event=cancel_event)
    return [o for o in out if o is not None]


def failures(outcomes: Iterable[RunSummary | RunFailure]) -> list[RunFailure]:
    """The :class:`RunFailure` entries of a batch."""
    return [o for o in outcomes if isinstance(o, RunFailure)]


def raise_failures(outcomes: Iterable[RunSummary | RunFailure]) -> None:
    """Raise one RuntimeError summarising every failed run in a batch."""
    failed = failures(outcomes)
    if failed:
        detail = "\n\n".join(f"--- {f}\n{f.traceback}" for f in failed)
        raise RuntimeError(
            f"{len(failed)} experiment run(s) failed:\n{detail}")


# -- executor benchmark --------------------------------------------------------


def bench_configs(n_values: Sequence[int] = (16, 24),
                  protocols: Sequence[str] = ("optimistic",
                                              "chandy-lamport"),
                  horizon: float = 1200.0, seed: int = 0,
                  repeats: int = 2) -> list[ExperimentConfig]:
    """The fixed ``repro bench`` sweep: |n_values| x |protocols| x repeats.

    Sized so each run takes on the order of a second — long enough that
    pool spawn cost (one interpreter + numpy import per worker, reused
    across tasks) amortizes and a multi-core machine shows real speedup.
    """
    base = ExperimentConfig(seed=seed, horizon=horizon,
                            checkpoint_interval=60.0,
                            state_bytes=1_000_000, timeout=20.0,
                            verify=False)
    return [base.derive(n=n, protocol=p, seed=seed + i * repeats + r)
            for i, n in enumerate(n_values) for p in protocols
            for r in range(repeats)]


def _tracing_overhead(configs: Sequence[ExperimentConfig],
                      repeats: int = 3) -> tuple[dict[str, Any],
                                                 dict[str, Any]]:
    """Serial baseline-vs-traced rerun over a small subset of the sweep.

    Returns ``(tracing, metrics)``: the ``repro.bench/1`` tracing block
    (baseline/traced wall seconds + overhead fraction) and the merged
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot collected from
    the traced runs' ``metrics`` events — the shared metrics schema both
    BENCH files carry.  Each pass takes the best of ``repeats`` timings:
    runs are deterministic, so the minimum is the least
    scheduler-disturbed measurement of the same work.
    """
    from ..obs import MemorySink, MetricsRegistry, Tracer
    from ..obs.profile import wall_now
    subset = list(configs)[:2]

    def _timed(tracer_for: Any) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = wall_now()
            for cfg in subset:
                tracer = tracer_for()
                if tracer is None:
                    run_experiment(cfg)
                else:
                    run_experiment(cfg, tracer=tracer)
            best = min(best, wall_now() - t0)
        return best

    baseline_s = _timed(lambda: None)
    sink = MemorySink()
    traced_s = _timed(lambda: Tracer([sink], host="harness"))
    registry = MetricsRegistry()
    merged = 0
    for event in sink.events:
        if event.ev == "metrics":
            merged += 1
            if merged > len(subset):
                break  # identical repeats: fold each config's run once
            registry.merge(event.attrs)
    tracing = {
        "baseline_seconds": round(baseline_s, 4),
        "traced_seconds": round(traced_s, 4),
        "overhead_frac": (round((traced_s - baseline_s) / baseline_s, 4)
                          if baseline_s > 0 else None),
    }
    return tracing, registry.snapshot()


def bench_executor(jobs: int = 4, out_path: str | Path | None =
                   "BENCH_executor.json",
                   configs: Sequence[ExperimentConfig] | None = None,
                   progress: ProgressArg = None) -> dict[str, Any]:
    """Time the fixed sweep serially vs in parallel; emit BENCH JSON.

    The two passes must produce identical summaries (asserted into the
    payload as ``identical_metrics``) — parallelism only buys wall-clock.
    The payload follows the shared ``repro.bench/1`` envelope
    (:data:`repro.obs.BENCH_SCHEMA`): ``schema``/``bench``/``ok``/
    ``config``/``metrics``/``tracing`` on top of the legacy executor
    keys, so ``BENCH_executor.json`` and ``BENCH_live.json`` validate
    against the same schema.
    """
    from ..obs import BENCH_SCHEMA
    if configs is None:
        configs = bench_configs()
    configs = list(configs)
    # Wall-clock reads are the *measurement* here, not simulated time —
    # the executor benchmark times real host execution, never sim logic.
    t0 = time.perf_counter()  # repro: allow[REP001] host-side benchmark timing, not simulated code
    serial = run_many(configs, jobs=1, progress=progress)
    t1 = time.perf_counter()  # repro: allow[REP001] host-side benchmark timing, not simulated code
    parallel = run_many(configs, jobs=jobs, progress=progress)
    t2 = time.perf_counter()  # repro: allow[REP001] host-side benchmark timing, not simulated code
    raise_failures(serial)
    raise_failures(parallel)
    serial_s = t1 - t0
    parallel_s = t2 - t1
    identical = all(
        a.metrics_dict == b.metrics_dict and a.orphans == b.orphans
        and a.truncated == b.truncated
        for a, b in zip(serial, parallel))
    tracing, metrics = _tracing_overhead(configs)
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": "executor",
        "ok": identical,
        "config": {
            "jobs": jobs,
            "runs": len(configs),
            "configs": [{"protocol": c.protocol, "n": c.n, "seed": c.seed,
                         "horizon": c.horizon} for c in configs],
        },
        "metrics": metrics,
        "tracing": tracing,
        # Legacy executor keys (kept for existing consumers) -----------
        "runs": len(configs),
        "jobs": jobs,
        "host_cpus": mp.cpu_count(),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 4) if parallel_s else None,
        "serial_runs_per_sec": round(len(configs) / serial_s, 4)
        if serial_s else None,
        "parallel_runs_per_sec": round(len(configs) / parallel_s, 4)
        if parallel_s else None,
        "identical_metrics": identical,
        "configs": [{"protocol": c.protocol, "n": c.n, "seed": c.seed,
                     "horizon": c.horizon} for c in configs],
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                  "utf-8")
    return payload
