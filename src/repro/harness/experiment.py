"""Experiment configuration and single-run execution.

One :class:`ExperimentConfig` fully determines a run — protocol, system
size, topology, latency model, workload, checkpointing parameters, storage
parameters, and the seed.  ``run_experiment`` builds the simulation, runs it
to quiescence, optionally verifies global-checkpoint consistency, and
returns a :class:`RunResult` bundling the live objects with the reduced
:class:`~repro.metrics.collectors.RunMetrics`.

The protocol registry (:data:`PROTOCOLS`) gives every protocol a uniform
``build(cfg, sim, network, storage) -> runtime`` constructor plus the
FIFO requirement flag (Chandy-Lamport), so comparisons and sweeps treat
protocols as interchangeable values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..baselines import (
    ChandyLamportRuntime,
    PlankStaggeredRuntime,
    CicRuntime,
    KooTouegRuntime,
    ManivannanSinghalRuntime,
    StaggeredRuntime,
    UncoordinatedRuntime,
)
from ..causality.consistency import ConsistencyVerifier
from ..core import (
    FlushAtFinalize,
    FlushImmediately,
    FlushOpportunistic,
    FlushUniformDelay,
    MachineConfig,
    OptimisticConfig,
    OptimisticRuntime,
)
from ..des.engine import Simulator
from ..metrics.collectors import RunMetrics, collect
from ..net import latency as latency_mod
from ..net import topology as topology_mod
from ..net.network import Network
from ..storage.disk_model import DiskModel
from ..storage.stable_storage import StableStorage
from ..workload.generators import make as make_workload

# -- factories -----------------------------------------------------------------

LATENCIES: dict[str, Callable[..., latency_mod.LatencyModel]] = {
    "constant": latency_mod.ConstantLatency,
    "uniform": latency_mod.UniformLatency,
    "exponential": latency_mod.ExponentialLatency,
    "lognormal": latency_mod.LogNormalLatency,
    "bandwidth": latency_mod.BandwidthLatency,
}

TOPOLOGIES: dict[str, Callable[..., topology_mod.Topology]] = {
    "complete": topology_mod.complete,
    "ring": topology_mod.ring,
    "star": topology_mod.star,
    "line": topology_mod.line,
}

FLUSH_POLICIES: dict[str, Callable[..., Any]] = {
    "at_finalize": FlushAtFinalize,
    "immediate": FlushImmediately,
    "uniform_delay": FlushUniformDelay,
    "opportunistic": FlushOpportunistic,
}


@dataclass
class ExperimentConfig:
    """Everything that determines one run."""

    protocol: str = "optimistic"
    n: int = 8
    seed: int = 0
    horizon: float = 300.0
    # Substrate ------------------------------------------------------------------
    topology: str = "complete"
    topology_kwargs: dict[str, Any] = field(default_factory=dict)
    latency: str = "uniform"
    latency_kwargs: dict[str, Any] = field(
        default_factory=lambda: {"low": 0.05, "high": 0.5})
    disk_seek: float = 0.02
    disk_bandwidth: float = 50e6
    storage_servers: int = 1
    # Workload --------------------------------------------------------------------
    workload: str = "uniform"
    workload_kwargs: dict[str, Any] = field(
        default_factory=lambda: {"rate": 1.0, "msg_size": 1024})
    # Checkpointing ------------------------------------------------------------------
    checkpoint_interval: float = 60.0
    state_bytes: int = 64_000_000
    timeout: float = 20.0
    capture_time: float = 0.1          # CIC forced-checkpoint capture
    flush: str = "at_finalize"         # optimistic flush policy
    flush_kwargs: dict[str, Any] = field(default_factory=dict)
    machine_kwargs: dict[str, Any] = field(default_factory=dict)
    initiation_phase: str = "jittered"
    log_all_messages: bool = False     # optimistic pessimistic-log ablation
    #: Incremental checkpointing (optimistic protocol): every k-th full.
    incremental_every: int | None = None
    delta_fraction: float = 0.1
    uncoordinated_logging: bool = False
    #: NIC bandwidth (bytes/s) for every process, ``None`` = unlimited.
    nic_bandwidth: float | None = None
    #: Shared-fabric bandwidth (bytes/s), ``None`` = no shared bottleneck.
    medium_bandwidth: float | None = None
    #: Route checkpoint writes over the network to a file-server *node*
    #: (see :mod:`repro.storage.networked`): transfers consume sender NIC
    #: bandwidth and can delay application messages (experiment E17).
    networked_storage: bool = False
    # Execution guards / verification ----------------------------------------------------
    max_events: int = 5_000_000
    verify: bool = True
    #: Disable trace recording for large-scale performance runs.  Mutually
    #: exclusive with ``verify`` (the verifier reads the trace).
    trace_enabled: bool = True

    def derive(self, **changes: Any) -> "ExperimentConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


@dataclass
class RunResult:
    """A finished run with the live objects and reduced metrics."""

    config: ExperimentConfig
    sim: Simulator
    network: Network
    storage: StableStorage
    runtime: Any
    metrics: RunMetrics
    #: seq -> orphan count, when verification ran and the protocol exposes
    #: global records (empty dict otherwise).
    orphans: dict[int, int] = field(default_factory=dict)
    truncated: bool = False

    @property
    def consistent(self) -> bool:
        """Every verified global checkpoint is orphan-free."""
        return all(v == 0 for v in self.orphans.values())

    @property
    def ok(self) -> bool:
        """Acceptance (RunOutcome): consistent and ran to quiescence."""
        return self.consistent and not self.truncated

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready outcome record (the RunOutcome surface)."""
        return {
            "protocol": self.config.protocol,
            "n": self.config.n,
            "seed": self.config.seed,
            "ok": self.ok,
            "consistent": self.consistent,
            "truncated": self.truncated,
            "orphans": {str(k): v for k, v in sorted(self.orphans.items())},
            "metrics": self.metrics.as_dict(),
        }


# -- protocol registry -------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolSpec:
    """Uniform protocol constructor for the harness."""

    name: str
    needs_fifo: bool
    build: Callable[[ExperimentConfig, Simulator, Network, StableStorage], Any]


def _build_optimistic(cfg: ExperimentConfig, sim: Simulator, net: Network,
                      storage: StableStorage) -> OptimisticRuntime:
    flush = FLUSH_POLICIES[cfg.flush](**cfg.flush_kwargs)
    oc = OptimisticConfig(
        checkpoint_interval=cfg.checkpoint_interval,
        initiation_phase=cfg.initiation_phase,
        timeout=cfg.timeout,
        state_bytes=cfg.state_bytes,
        flush_policy=flush,
        machine=MachineConfig(**cfg.machine_kwargs),
        log_all_messages=cfg.log_all_messages,
        incremental_every=cfg.incremental_every,
        delta_fraction=cfg.delta_fraction,
    )
    return OptimisticRuntime(sim, net, storage, oc, horizon=cfg.horizon)


def _build_cl(cfg, sim, net, storage):
    return ChandyLamportRuntime(sim, net, storage,
                                interval=cfg.checkpoint_interval,
                                state_bytes=cfg.state_bytes,
                                horizon=cfg.horizon)


def _build_kt(cfg, sim, net, storage):
    return KooTouegRuntime(sim, net, storage,
                           interval=cfg.checkpoint_interval,
                           state_bytes=cfg.state_bytes, horizon=cfg.horizon)


def _build_staggered(cfg, sim, net, storage):
    return StaggeredRuntime(sim, net, storage,
                            interval=cfg.checkpoint_interval,
                            state_bytes=cfg.state_bytes, horizon=cfg.horizon)


def _build_cic(cfg, sim, net, storage):
    return CicRuntime(sim, net, storage, interval=cfg.checkpoint_interval,
                      state_bytes=cfg.state_bytes,
                      capture_time=cfg.capture_time, horizon=cfg.horizon)


def _build_plank(cfg, sim, net, storage):
    return PlankStaggeredRuntime(
        sim, net, storage, interval=cfg.checkpoint_interval,
        state_bytes=cfg.state_bytes, horizon=cfg.horizon)


def _build_ms(cfg, sim, net, storage):
    return ManivannanSinghalRuntime(
        sim, net, storage, interval=cfg.checkpoint_interval,
        state_bytes=cfg.state_bytes, capture_time=cfg.capture_time,
        horizon=cfg.horizon)


def _build_uncoordinated(cfg, sim, net, storage):
    return UncoordinatedRuntime(sim, net, storage,
                                interval=cfg.checkpoint_interval,
                                state_bytes=cfg.state_bytes,
                                log_messages=cfg.uncoordinated_logging,
                                horizon=cfg.horizon)


PROTOCOLS: dict[str, ProtocolSpec] = {
    "optimistic": ProtocolSpec("optimistic", False, _build_optimistic),
    "chandy-lamport": ProtocolSpec("chandy-lamport", True, _build_cl),
    "koo-toueg": ProtocolSpec("koo-toueg", False, _build_kt),
    "staggered": ProtocolSpec("staggered", False, _build_staggered),
    "cic-bcs": ProtocolSpec("cic-bcs", False, _build_cic),
    "quasi-sync-ms": ProtocolSpec("quasi-sync-ms", False, _build_ms),
    "plank-staggered": ProtocolSpec("plank-staggered", False, _build_plank),
    "uncoordinated": ProtocolSpec("uncoordinated", False,
                                  _build_uncoordinated),
}


def register_protocol(spec: ProtocolSpec, *, replace: bool = False) -> None:
    """Add a protocol to the registry (extension point for new schemes).

    The spec's ``build(cfg, sim, network, storage)`` must return a runtime
    object exposing at least ``build(apps)`` and ``start()``; implementing
    the optional metric surfaces (``global_records``, ``total_checkpoints``,
    ``response_delays``, ...) unlocks verification and the comparison
    columns — see :class:`repro.baselines.base.BaselineRuntime`.
    """
    if spec.name in PROTOCOLS and not replace:
        raise ValueError(
            f"protocol {spec.name!r} already registered "
            f"(pass replace=True to override)")
    PROTOCOLS[spec.name] = spec


# -- execution ------------------------------------------------------------------------


def build_experiment(cfg: ExperimentConfig
                     ) -> tuple[Simulator, Network, StableStorage, Any]:
    """Construct (but do not run) an experiment's simulation objects."""
    try:
        spec = PROTOCOLS[cfg.protocol]
    except KeyError:
        raise KeyError(f"unknown protocol {cfg.protocol!r}; "
                       f"choices: {sorted(PROTOCOLS)}") from None
    if cfg.verify and not cfg.trace_enabled:
        raise ValueError("verify=True requires trace_enabled=True "
                         "(the consistency verifier reads the trace)")
    sim = Simulator(seed=cfg.seed)
    sim.trace.enabled = cfg.trace_enabled
    lat = LATENCIES[cfg.latency](**cfg.latency_kwargs)
    inner = StableStorage(
        sim, DiskModel(seek_time=cfg.disk_seek,
                       bandwidth=cfg.disk_bandwidth),
        servers=cfg.storage_servers)
    if cfg.networked_storage:
        # One extra topology node hosts the file server; checkpoint writes
        # travel as real messages from the writer's NIC.
        from ..storage.networked import (
            RemoteStorage,
            StorageServer,
            install_ack_shim,
        )
        topo = TOPOLOGIES[cfg.topology](cfg.n + 1, **cfg.topology_kwargs)
        net = Network(sim, topo, lat, fifo=spec.needs_fifo,
                      nic_bandwidth=cfg.nic_bandwidth,
                      medium_bandwidth=cfg.medium_bandwidth, app_n=cfg.n)
        server = StorageServer(cfg.n, sim, inner)
        storage: Any = RemoteStorage(net, server)
        runtime = spec.build(cfg, sim, net, storage)
        apps = make_workload(cfg.workload, cfg.n, cfg.horizon,
                             **cfg.workload_kwargs)
        runtime.build(apps)
        net.add_process(server)
        for host in runtime.hosts.values():
            install_ack_shim(host, storage)
    else:
        topo = TOPOLOGIES[cfg.topology](cfg.n, **cfg.topology_kwargs)
        net = Network(sim, topo, lat, fifo=spec.needs_fifo,
                      nic_bandwidth=cfg.nic_bandwidth,
                      medium_bandwidth=cfg.medium_bandwidth)
        storage = inner
        runtime = spec.build(cfg, sim, net, storage)
        apps = make_workload(cfg.workload, cfg.n, cfg.horizon,
                             **cfg.workload_kwargs)
        runtime.build(apps)
    return sim, net, storage, runtime


def run_experiment(cfg: ExperimentConfig,
                   tracer: Any | None = None,
                   before_run: Callable[[Simulator, Network, StableStorage,
                                         Any], None] | None = None
                   ) -> RunResult:
    """Build, run to quiescence, collect metrics, optionally verify.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) attaches the
    observability bridge for the run: protocol-phase spans translated
    live from the simulation trace, a whole-run span, a hot-path
    profiler, and a final deterministic metrics snapshot.  It is a
    keyword argument rather than a config field so that enabling
    tracing never changes :func:`~repro.harness.executor.config_key`
    cache identities.  ``None`` (or a disabled tracer) is the zero-cost
    path: nothing subscribes to the trace stream.

    ``before_run`` (optional) is invoked with the freshly built
    ``(sim, network, storage, runtime)`` before ``runtime.start()`` —
    the attachment point for interposers (fault injectors, partitions,
    recovery managers) that must install before the first event fires.
    """
    sim, net, storage, runtime = build_experiment(cfg)
    if before_run is not None:
        before_run(sim, net, storage, runtime)
    bridge = None
    if tracer is not None and tracer.enabled:
        from ..obs import DesProfiler, attach_des_tracer
        bridge = attach_des_tracer(sim, tracer)
        DesProfiler(tracer).attach(sim)
        tracer.span_start("run", f"run:{cfg.protocol}:{cfg.seed}", sim.now,
                          protocol=cfg.protocol, n=cfg.n, seed=cfg.seed)
    runtime.start()
    sim.run(max_events=cfg.max_events)
    truncated = sim.peek_time() is not None
    orphans: dict[int, int] = {}
    if cfg.verify and hasattr(runtime, "global_records"):
        verifier = ConsistencyVerifier(sim.trace)
        results = verifier.verify_all(runtime.global_records())
        orphans = {seq: len(o) for seq, o in results.items()}
    metrics = collect(cfg.protocol, sim, net, storage, runtime)
    if bridge is not None:
        tracer.span_end("run", f"run:{cfg.protocol}:{cfg.seed}", sim.now,
                        truncated=truncated,
                        orphans=sum(orphans.values()))
        bridge.finish(sim)
        bridge.registry.gauge("run.makespan").set(metrics.makespan)
        tracer.metrics_snapshot(bridge.registry.snapshot(), sim.now)
    return RunResult(config=cfg, sim=sim, network=net, storage=storage,
                     runtime=runtime, metrics=metrics, orphans=orphans,
                     truncated=truncated)
