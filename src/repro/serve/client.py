"""The synchronous client behind ``repro submit`` / ``repro watch``.

Plain stdlib: ``http.client`` for the control calls, a raw socket with a
hand-rolled RFC 6455 handshake for the event stream (client frames are
masked, as the RFC requires of clients).  Synchronous on purpose — the
CLI is a short-lived process per invocation; only the *server* needs an
event loop.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Any, Iterator

from .protocol import SERVE_SCHEMA
from .server import _WS_GUID, _ws_accept


class ServeClientError(RuntimeError):
    """A request the server rejected (carries its HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """One server address; every method is a fresh connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- control calls --------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Any = None) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"}
                         if body else {})
            resp = conn.getresponse()
            raw = resp.read()
            ctype = resp.getheader("Content-Type", "")
            if ctype.startswith("application/json"):
                return resp.status, json.loads(raw.decode("utf-8"))
            return resp.status, raw
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 payload: Any = None) -> Any:
        status, data = self._request(method, path, payload)
        if status >= 400:
            message = (data.get("error", str(data))
                       if isinstance(data, dict) else str(data))
            raise ServeClientError(status, message)
        return data

    def submit(self, kind: str, spec: dict[str, Any] | None = None, *,
               priority: int = 0) -> dict[str, Any]:
        """Submit one job; returns the created record."""
        payload = {"schema": SERVE_SCHEMA, "kind": kind,
                   "spec": spec or {}, "priority": priority}
        return self._checked("POST", "/jobs", payload)["job"]

    def job(self, job_id: str) -> dict[str, Any]:
        """One job record."""
        return self._checked("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict[str, Any]]:
        """Every job record, submission order."""
        return self._checked("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cooperatively cancel; returns the current record."""
        return self._checked("DELETE", f"/jobs/{job_id}")["job"]

    def artifact(self, job_id: str, relpath: str) -> bytes:
        """One artifact file's bytes."""
        return self._checked("GET", f"/artifacts/{job_id}/{relpath}")

    def wait(self, job_id: str) -> dict[str, Any]:
        """Stream events until the job is terminal; returns the record."""
        for _ in self.watch(job_id):
            pass
        return self.job(job_id)

    # -- the event stream -----------------------------------------------

    def watch(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield every ``repro.serve/1`` event for one job: the full
        replay from submission, then live until the job is terminal (the
        server closes the stream)."""
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        try:
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            sock.sendall((
                f"GET /events?job={job_id} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n").encode("ascii"))
            reader = sock.makefile("rb")
            status_line = reader.readline().decode("ascii", "replace")
            if " 101 " not in status_line:
                raise ServeClientError(
                    400, f"websocket handshake refused: "
                         f"{status_line.strip()}")
            accept = None
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "sec-websocket-accept":
                    accept = value.strip()
            if accept != _ws_accept(key):
                raise ServeClientError(400, "bad Sec-WebSocket-Accept")
            while True:
                frame = _read_frame(reader)
                if frame is None:
                    return
                opcode, payload = frame
                if opcode == 0x8:      # close
                    sock.sendall(_masked_frame(0x8, b""))
                    return
                if opcode == 0x1:
                    yield json.loads(payload.decode("utf-8"))
        finally:
            sock.close()


def _read_frame(reader: Any) -> tuple[int, bytes] | None:
    """One server frame (unmasked), or None on EOF."""
    head = reader.read(2)
    if len(head) < 2:
        return None
    opcode = head[0] & 0x0F
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(reader.read(2), "big")
    elif length == 127:
        length = int.from_bytes(reader.read(8), "big")
    payload = reader.read(length) if length else b""
    if len(payload) < length:
        return None
    return opcode, payload


def _masked_frame(opcode: int, payload: bytes) -> bytes:
    """One client→server frame (RFC 6455 requires client masking)."""
    mask = os.urandom(4)
    masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    n = len(payload)
    if n < 126:
        head = bytes([0x80 | opcode, 0x80 | n])
    elif n < 65536:
        head = bytes([0x80 | opcode, 0x80 | 126]) + n.to_bytes(2, "big")
    else:
        head = bytes([0x80 | opcode, 0x80 | 127]) + n.to_bytes(8, "big")
    return head + mask + masked


__all__ = ["ServeClient", "ServeClientError", "_WS_GUID"]
