"""The asyncio job server: HTTP control surface + WebSocket streams.

Plain asyncio streams — no web framework.  The HTTP side is the minimal
subset the control plane needs (request line, headers, Content-Length
bodies); the event stream is RFC 6455 WebSocket, text frames only,
implemented directly over the same streams:

===========================  =============================================
``POST /jobs``               submit one validated job (201 + record);
                             503 while draining
``GET /jobs``                every job record, submission order
``GET /jobs/{id}``           one record (404 unknown)
``DELETE /jobs/{id}``        cooperative cancel (200 + current record)
``GET /artifacts/{id}/<p>``  one artifact file (404; traversal-guarded)
``GET /events?job={id}``     WebSocket: replay + live ``repro.serve/1``
                             events until the job is terminal
===========================  =============================================

Shutdown is a *drain*, not an abort: SIGTERM/SIGINT set one event; the
server then refuses new jobs (503), checkpoint-cancels running jobs
through their cooperative cancel hooks, waits for them to land terminal,
persists everything, closes watcher sockets and exits 0.  Queued jobs
stay queued on disk — a restarted server picks them up.

Every handler keeps the event loop responsive: filesystem and scheduler
work runs via ``loop.run_in_executor`` (the scheduler's sync methods are
thread-safe), so one client uploading a job never stalls another's
event stream.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import signal
from functools import partial
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .protocol import ProtocolError, validate_job
from .scheduler import Scheduler

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Poll period for new events on a watcher connection (seconds).
_WS_POLL = 0.05

_STATUS_TEXT = {200: "OK", 201: "Created", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error", 503: "Service Unavailable"}

#: Terminal job states, re-derived here to close watcher streams.
_TERMINAL = ("done", "failed", "cancelled")


def _http_response(status: int, payload: Any, *,
                   content_type: str = "application/json") -> bytes:
    if isinstance(payload, (bytes, bytearray)):
        # Raw artifact bytes must not claim to be JSON, or clients
        # would decode them instead of handing back the file.
        body = bytes(payload)
        content_type = "application/octet-stream"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One server→client frame (FIN set, unmasked)."""
    head = bytes([0x80 | opcode])
    n = len(payload)
    if n < 126:
        head += bytes([n])
    elif n < 65536:
        head += bytes([126]) + n.to_bytes(2, "big")
    else:
        head += bytes([127]) + n.to_bytes(8, "big")
    return head + payload


def _ws_accept(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


class ServeServer:
    """One long-lived multi-client job server."""

    def __init__(self, scheduler: Scheduler, *, host: str = "127.0.0.1",
                 port: int = 7341) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        #: The actually bound port (useful with ``port=0`` in tests).
        self.bound_port: int | None = None
        self._shutdown = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._dispatch_task: asyncio.Task | None = None

    # -- lifecycle ------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin the graceful drain (signal handlers land here)."""
        self.scheduler.draining = True
        self._shutdown.set()

    async def start(self) -> None:
        """Bind, recover persisted jobs, start dispatching."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.recover)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._dispatch_task = asyncio.create_task(
            self.scheduler.dispatch_loop())
        self.scheduler.kick()

    async def run_until_shutdown(self) -> int:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, ValueError, RuntimeError):
                pass                   # non-main thread (tests) / platform
        await self._shutdown.wait()
        await self.shutdown()
        return 0

    async def shutdown(self) -> None:
        """Drain running jobs, flush state, close every connection."""
        self.scheduler.draining = True
        self._shutdown.set()
        await self.scheduler.drain()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5.0)
            except (asyncio.TimeoutError, TimeoutError):
                pass                   # lingering watchers; sockets die
                #                        with the process

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                       # client went away mid-request
        except Exception as exc:  # one bad request must not kill serving
            try:
                writer.write(_http_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        request_line = await reader.readline()
        if not request_line.strip():
            return
        try:
            method, target, _version = \
                request_line.decode("ascii").split()
        except ValueError:
            writer.write(_http_response(400, {"error": "bad request line"}))
            await writer.drain()
            return
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)

        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)

        if path == "/events" and \
                headers.get("upgrade", "").lower() == "websocket":
            await self._handle_websocket(writer, headers, query)
            return
        status, payload = await self._route(method, path, body)
        writer.write(_http_response(status, payload))
        await writer.drain()

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, Any]:
        loop = asyncio.get_running_loop()
        parts = [p for p in path.split("/") if p]

        if path == "/jobs" and method == "POST":
            if self.scheduler.draining:
                return 503, {"error": "server is draining; "
                                      "not accepting jobs"}
            try:
                normalized = validate_job(json.loads(body.decode("utf-8")))
            except (ValueError, ProtocolError) as exc:
                return 400, {"error": str(exc)}
            try:
                record = await loop.run_in_executor(
                    None, self.scheduler.submit, normalized)
            except RuntimeError as exc:
                return 503, {"error": str(exc)}
            self.scheduler.kick()
            return 201, {"job": record.as_dict()}

        if path == "/jobs" and method == "GET":
            records = sorted(self.scheduler.records.values(),
                             key=lambda r: r.seq)
            return 200, {"jobs": [r.as_dict() for r in records]}

        if len(parts) == 2 and parts[0] == "jobs":
            job_id = parts[1]
            record = self.scheduler.records.get(job_id)
            if record is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if method == "GET":
                return 200, {"job": record.as_dict()}
            if method == "DELETE":
                record = await loop.run_in_executor(
                    None, self.scheduler.cancel, job_id)
                return 200, {"job": record.as_dict()}
            return 405, {"error": f"{method} not allowed on {path}"}

        if len(parts) >= 2 and parts[0] == "artifacts" and method == "GET":
            job_id = parts[1]
            if job_id not in self.scheduler.records:
                return 404, {"error": f"unknown job {job_id!r}"}
            root = self.scheduler.store.artifacts_dir(job_id).resolve()
            target = root.joinpath(*parts[2:]).resolve()
            if root not in target.parents and target != root:
                return 404, {"error": "artifact path escapes the job"}
            exists = await loop.run_in_executor(None, target.is_file)
            if not exists:
                return 404, {"error": f"no artifact "
                                      f"{'/'.join(parts[2:])!r}"}
            data = await loop.run_in_executor(None, target.read_bytes)
            return 200, data

        return 404, {"error": f"no route for {method} {path}"}

    # -- the event stream -----------------------------------------------

    async def _handle_websocket(self, writer: asyncio.StreamWriter,
                                headers: dict[str, str],
                                query: dict[str, list[str]]) -> None:
        key = headers.get("sec-websocket-key", "")
        job_ids = query.get("job", [])
        if not key or len(job_ids) != 1 \
                or job_ids[0] not in self.scheduler.records:
            writer.write(_http_response(
                400, {"error": "need a websocket key and ?job=<known id>"}))
            await writer.drain()
            return
        job_id = job_ids[0]
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_ws_accept(key)}\r\n\r\n"
        ).encode("ascii"))
        await writer.drain()

        loop = asyncio.get_running_loop()
        past, sub = await loop.run_in_executor(
            None, partial(self.scheduler.attach, job_id))
        try:
            terminal_seen = False
            for event in past:
                writer.write(_ws_frame(0x1, json.dumps(
                    event, sort_keys=True).encode("utf-8")))
                terminal_seen = terminal_seen or _is_terminal(event)
            await writer.drain()
            while sub is not None and not terminal_seen:
                items = sub.pop_all()
                for event in items:
                    writer.write(_ws_frame(0x1, json.dumps(
                        event, sort_keys=True).encode("utf-8")))
                    terminal_seen = terminal_seen or _is_terminal(event)
                if items:
                    await writer.drain()
                if terminal_seen or self._shutdown.is_set():
                    break
                await asyncio.sleep(_WS_POLL)
            writer.write(_ws_frame(0x8, b""))
            await writer.drain()
        finally:
            if sub is not None:
                sub.close()


def _is_terminal(event: dict[str, Any]) -> bool:
    return event.get("ev") == "job.state" \
        and event.get("state") in _TERMINAL


async def _serve_main(server: ServeServer) -> int:
    return await server.run_until_shutdown()


def serve_forever(scheduler: Scheduler, *, host: str = "127.0.0.1",
                  port: int = 7341) -> int:
    """Blocking entry: serve until a signal lands; returns the exit code."""
    server = ServeServer(scheduler, host=host, port=port)
    return asyncio.run(_serve_main(server))
