"""The ``repro.serve/1`` wire schema: jobs, events, exit codes.

Everything crossing the server boundary — job submissions over
``POST /jobs``, lifecycle/trace events over the WebSocket — is a JSON
object stamped ``"schema": "repro.serve/1"`` and validated *strictly* on
both sides: unknown top-level keys, unknown job kinds, unknown spec
fields and type mismatches are all rejected with a
:class:`ProtocolError` rather than silently defaulted, mirroring the
discipline of :mod:`repro.obs.schema` (an old reader must fail loudly on
a new writer, never misread it).

Two payload families:

* **jobs** — ``{"schema", "kind", "spec", "priority"?}``; ``kind``
  selects one of :data:`JOB_KINDS` and ``spec`` is checked against that
  kind's field table (:data:`SPEC_FIELDS`), every field typed, defaulted
  and bounded here so the scheduler never sees a malformed spec;
* **events** — ``{"schema", "ev", "job", "seq", ...}``; ``job.state``
  carries a :data:`JOB_STATES` transition, ``trace`` wraps one
  schema-valid :mod:`repro.obs` event (so a client can extract the inner
  stream and feed it to ``repro trace validate`` unchanged).

Exit codes follow the repo-wide convention (:func:`exit_code_for`):
0 — the job finished and its own acceptance bar held; 1 — the job
failed, was cancelled, or an invariant broke; 2 — usage error (bad
spec, unknown kind, malformed request).
"""

from __future__ import annotations

from typing import Any, Mapping

#: Version stamp carried by every serve payload.
SERVE_SCHEMA = "repro.serve/1"

#: The job kinds the scheduler knows how to run.
JOB_KINDS = ("sweep", "chaos-matrix", "live-run", "bench")

#: Per-job state machine states (see :data:`TRANSITIONS`).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Legal state-machine moves; anything else is a scheduler bug.
TRANSITIONS: dict[str, tuple[str, ...]] = {
    "queued": ("running", "cancelled", "failed"),
    "running": ("done", "failed", "cancelled"),
    "done": (),
    "failed": (),
    "cancelled": (),
}

#: Event kinds on the serve stream.
EVENT_KINDS = ("job.state", "trace")

# -- exit codes ------------------------------------------------------------

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def exit_code_for(state: str) -> int:
    """Map a terminal job state onto the CLI exit-code convention."""
    if state == "done":
        return EXIT_OK
    if state in ("failed", "cancelled"):
        return EXIT_FAILURE
    raise ProtocolError(f"job state {state!r} is not terminal")


class ProtocolError(ValueError):
    """A payload that violates the ``repro.serve/1`` schema."""


# -- job spec field tables -------------------------------------------------

#: ``field -> (allowed types, default)``; a ``REQUIRED`` default means the
#: submitter must supply the field.  Collection-valued fields additionally
#: constrain their element types in :func:`_check_field`.
REQUIRED = object()

_NUM = (int, float)

SPEC_FIELDS: dict[str, dict[str, tuple[tuple[type, ...], Any]]] = {
    "sweep": {
        "param": ((str,), REQUIRED),
        "values": ((list,), REQUIRED),
        "protocols": ((list,), ["optimistic"]),
        "n": ((int,), 6),
        "seed": ((int,), 0),
        "horizon": (_NUM, 120.0),
        "interval": (_NUM, 30.0),
        "jobs": ((int,), 1),
        "verify": ((bool,), True),
        "timeout_s": (_NUM, None),
    },
    "chaos-matrix": {
        "kinds": ((list,), ["drop", "crash"]),
        "runtimes": ((list,), ["des"]),
        "seed": ((int,), 0),
        "transport": ((str,), "local"),
        "duration": (_NUM, 2.5),
        "jobs": ((int,), 1),
        "timeout_s": (_NUM, None),
    },
    "live-run": {
        "n": ((int,), 3),
        "transport": ((str,), "local"),
        "duration": (_NUM, 2.0),
        "interval": (_NUM, 0.35),
        "timeout": (_NUM, 0.15),
        "rate": (_NUM, 30.0),
        "seed": ((int,), 0),
        "crash_at": (_NUM, None),
        "workload": ((str,), "uniform"),
        "timeout_s": (_NUM, None),
    },
    "bench": {
        "values": ((list,), [8]),
        "protocols": ((list,), ["optimistic"]),
        "horizon": (_NUM, 300.0),
        "seed": ((int,), 0),
        "repeats": ((int,), 1),
        "jobs": ((int,), 2),
        "timeout_s": (_NUM, None),
    },
}

#: Element types for the list-valued spec fields.
_LIST_ELEMENTS: dict[str, tuple[type, ...]] = {
    "values": (int, float, str),
    "protocols": (str,),
    "kinds": (str,),
    "runtimes": (str,),
}


def _check_field(kind: str, name: str, value: Any,
                 types: tuple[type, ...]) -> Any:
    """One typed spec field: exact type check (bool is not an int)."""
    if value is None and types == _NUM:
        return None          # optional numeric (crash_at, timeout_s)
    if isinstance(value, bool) and bool not in types:
        raise ProtocolError(
            f"{kind} spec field {name!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, got bool")
    if not isinstance(value, types):
        raise ProtocolError(
            f"{kind} spec field {name!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}")
    if name == "timeout_s" and value is not None and value <= 0:
        raise ProtocolError(
            f"{kind} spec field 'timeout_s' must be positive, "
            f"got {value!r}")
    if isinstance(value, list):
        elems = _LIST_ELEMENTS[name]
        if not value:
            raise ProtocolError(
                f"{kind} spec field {name!r} must not be empty")
        for item in value:
            if isinstance(item, bool) or not isinstance(item, elems):
                raise ProtocolError(
                    f"{kind} spec field {name!r} elements must be "
                    f"{'/'.join(t.__name__ for t in elems)}, "
                    f"got {item!r}")
    return value


def validate_job(data: Mapping[str, Any]) -> dict[str, Any]:
    """Strictly validate one job submission; return its normal form.

    The normal form has every spec field present (defaults applied) and
    exactly the keys ``schema``/``kind``/``spec``/``priority`` — the
    shape the scheduler persists and hashes.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(f"job payload must be an object, got "
                            f"{type(data).__name__}")
    unknown = set(data) - {"schema", "kind", "spec", "priority"}
    if unknown:
        raise ProtocolError(f"unknown job fields {sorted(unknown)}")
    if data.get("schema") != SERVE_SCHEMA:
        raise ProtocolError(
            f"job schema is {data.get('schema')!r} "
            f"(this server speaks {SERVE_SCHEMA})")
    kind = data.get("kind")
    if kind not in JOB_KINDS:
        raise ProtocolError(f"unknown job kind {kind!r}; "
                            f"choices: {list(JOB_KINDS)}")
    priority = data.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(f"priority must be an int, got {priority!r}")
    raw_spec = data.get("spec", {})
    if not isinstance(raw_spec, Mapping):
        raise ProtocolError(f"spec must be an object, got "
                            f"{type(raw_spec).__name__}")
    table = SPEC_FIELDS[kind]
    unknown = set(raw_spec) - set(table)
    if unknown:
        raise ProtocolError(
            f"unknown {kind} spec fields {sorted(unknown)}; "
            f"known: {sorted(table)}")
    spec: dict[str, Any] = {}
    for name, (types, default) in table.items():
        if name in raw_spec:
            spec[name] = _check_field(kind, name, raw_spec[name], types)
        elif default is REQUIRED:
            raise ProtocolError(f"{kind} spec requires field {name!r}")
        else:
            spec[name] = default
    return {"schema": SERVE_SCHEMA, "kind": kind, "spec": spec,
            "priority": priority}


def validate_event(data: Mapping[str, Any]) -> None:
    """Strictly validate one serve stream event (raises on violation)."""
    if not isinstance(data, Mapping):
        raise ProtocolError(f"event must be an object, got "
                            f"{type(data).__name__}")
    if data.get("schema") != SERVE_SCHEMA:
        raise ProtocolError(
            f"event schema is {data.get('schema')!r} "
            f"(this reader speaks {SERVE_SCHEMA})")
    ev = data.get("ev")
    if ev not in EVENT_KINDS:
        raise ProtocolError(f"unknown event kind {ev!r}; "
                            f"choices: {list(EVENT_KINDS)}")
    if not isinstance(data.get("job"), str) or not data["job"]:
        raise ProtocolError("event field 'job' must be a non-empty string")
    seq = data.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        raise ProtocolError(f"event field 'seq' must be an int >= 0, "
                            f"got {seq!r}")
    base = {"schema", "ev", "job", "seq"}
    if ev == "job.state":
        allowed = base | {"state", "error", "ok"}
        unknown = set(data) - allowed
        if unknown:
            raise ProtocolError(
                f"unknown job.state fields {sorted(unknown)}")
        if data.get("state") not in JOB_STATES:
            raise ProtocolError(f"unknown job state {data.get('state')!r}; "
                                f"choices: {list(JOB_STATES)}")
        if "error" in data and data["error"] is not None \
                and not isinstance(data["error"], str):
            raise ProtocolError("job.state field 'error' must be a string")
        if "ok" in data and not isinstance(data["ok"], bool):
            raise ProtocolError("job.state field 'ok' must be a bool")
    else:  # trace
        unknown = set(data) - (base | {"event"})
        if unknown:
            raise ProtocolError(f"unknown trace fields {sorted(unknown)}")
        inner = data.get("event")
        if not isinstance(inner, Mapping):
            raise ProtocolError("trace field 'event' must be an object")
        from ..obs.schema import SchemaError
        from ..obs.schema import validate_event as validate_obs_event
        try:
            validate_obs_event(inner)
        except SchemaError as exc:
            raise ProtocolError(f"embedded obs event invalid: {exc}") \
                from None


def state_event(job_id: str, seq: int, state: str, *,
                error: str | None = None,
                ok: bool | None = None) -> dict[str, Any]:
    """Build one ``job.state`` event in wire form."""
    out: dict[str, Any] = {"schema": SERVE_SCHEMA, "ev": "job.state",
                           "job": job_id, "seq": seq, "state": state}
    if error is not None:
        out["error"] = error
    if ok is not None:
        out["ok"] = ok
    return out


def trace_event(job_id: str, seq: int,
                obs_event: Mapping[str, Any]) -> dict[str, Any]:
    """Build one ``trace`` wrapper event around an encoded obs event."""
    return {"schema": SERVE_SCHEMA, "ev": "trace", "job": job_id,
            "seq": seq, "event": dict(obs_event)}
