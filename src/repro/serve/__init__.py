"""repro.serve — the asyncio job-server control plane.

A long-lived multi-client service that runs the repo's experiment farms
— sweeps, chaos matrices, live runs, benches — as queued jobs over a
small HTTP/WebSocket protocol (``repro.serve/1``); see docs/SERVICE.md.

Layers:

* :mod:`.protocol`  — the versioned job/event wire schema + exit codes;
* :mod:`.state`     — durable job records under ``.repro-serve/``;
* :mod:`.queue`     — the priority FIFO;
* :mod:`.scheduler` — concurrency-capped dispatch onto the existing
  harness/chaos/live entry points, with cooperative cancellation;
* :mod:`.server`    — the asyncio streams HTTP/WebSocket front end;
* :mod:`.client`    — the synchronous client the CLI uses.
"""

from .client import ServeClient, ServeClientError
from .protocol import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    JOB_KINDS,
    JOB_STATES,
    SERVE_SCHEMA,
    TERMINAL_STATES,
    ProtocolError,
    exit_code_for,
    validate_event,
    validate_job,
)
from .queue import JobQueue
from .scheduler import Scheduler
from .server import ServeServer, serve_forever
from .state import DEFAULT_STATE_DIR, JobRecord, JobStore

__all__ = [
    "DEFAULT_STATE_DIR",
    "EXIT_FAILURE",
    "EXIT_OK",
    "EXIT_USAGE",
    "JOB_KINDS",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "JobStore",
    "ProtocolError",
    "SERVE_SCHEMA",
    "Scheduler",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "TERMINAL_STATES",
    "exit_code_for",
    "serve_forever",
    "validate_event",
    "validate_job",
]
