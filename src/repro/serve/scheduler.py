"""Concurrency-capped dispatch of serve jobs onto the existing engines.

The scheduler owns the job table: a :class:`~repro.serve.queue.JobQueue`
of waiting ids, one :class:`~repro.serve.state.JobRecord` per job, one
:class:`~repro.obs.BroadcastSink` hub per job fanning its event stream
out to WebSocket watchers, and one ``asyncio.Task`` per *running* job.

Job bodies are the repo's existing entry points, run synchronously on
executor threads (``loop.run_in_executor``) so the event loop — which
must keep serving other clients — never blocks on them:

* ``sweep``        → :func:`repro.harness.executor.run_many` through the
  content-hash :class:`~repro.harness.executor.ResultCache`, so
  resubmitting an identical sweep is served from cache;
* ``chaos-matrix`` → :func:`repro.chaos.matrix.run_matrix`;
* ``live-run``     → :func:`repro.live.supervisor.run_live` (its own
  ``asyncio.run`` on the worker thread);
* ``bench``        → :func:`repro.harness.executor.bench_executor`.

Cancellation is cooperative end to end: one ``threading.Event`` per job
threads through ``run_many``/``run_matrix`` as ``cancel_event`` and
through ``LiveRunConfig.stop_event`` — a cancel stops *dispatching*,
drains in-flight work, and the job lands in ``cancelled`` with its
partial results attached, never a torn cache entry.

Every job emits a ``repro.serve/1`` event stream (``events.jsonl`` +
live fan-out): ``job.state`` transitions plus ``trace`` wrappers around
the schema-valid :mod:`repro.obs` events its tracer produced — a watcher
can unwrap the inner events and feed them to ``repro trace validate``
unchanged.  Event emission and watcher attach share one per-job lock, so
a subscriber sees the file replay and the live stream with no gap and
no duplicate.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any, Callable

from ..harness.executor import (
    ResultCache,
    RunFailure,
    config_key,
    run_many,
)
from ..harness.experiment import ExperimentConfig
from ..harness.sweep import _set_param
from ..obs import BroadcastSink, JsonlSink, Tracer, encode_event
from .protocol import state_event, trace_event
from .queue import JobQueue
from .state import JobRecord, JobStore

#: Default cap on concurrently running jobs.
DEFAULT_JOBS = 2


class _TraceRelay:
    """Push sink wrapping each obs event into the job's serve stream."""

    def __init__(self, scheduler: "Scheduler", job_id: str) -> None:
        self._scheduler = scheduler
        self._job_id = job_id

    def write(self, event: Any) -> None:
        encoded = encode_event(event)
        self._scheduler.emit(
            self._job_id,
            lambda seq: trace_event(self._job_id, seq, encoded))


class Scheduler:
    """Priority-FIFO job dispatch with a concurrency cap."""

    def __init__(self, store: JobStore, *, jobs: int = DEFAULT_JOBS,
                 cache_dir: str | Path | None = None) -> None:
        self.store = store
        self.max_jobs = max(1, jobs)
        #: Sweep/bench result cache shared across jobs (resubmit → hit).
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else store.root / "cache"
        self.queue = JobQueue()
        self.records: dict[str, JobRecord] = {}
        self.hubs: dict[str, BroadcastSink] = {}
        self.cancels: dict[str, threading.Event] = {}
        self.tasks: dict[str, asyncio.Task] = {}
        self.draining = False
        self._submit_seq = 0
        #: One sync lock for table mutations (never held across an await).
        self._table_lock = threading.Lock()
        #: Per-job emission locks (reentrant: state transitions hold the
        #: lock across save + emit so watchers attach atomically).
        self._emit_locks: dict[str, threading.RLock] = {}
        self._event_seqs: dict[str, int] = {}
        self._wake = asyncio.Event()

    # -- registration ---------------------------------------------------

    def _register(self, record: JobRecord) -> None:
        self.records[record.id] = record
        self.hubs[record.id] = BroadcastSink()
        self._emit_locks[record.id] = threading.RLock()
        existing = self.store.read_events(record.id)
        if existing:
            # Continue a recovered job's stream where it left off.
            last = existing[-1].get("seq", len(existing) - 1)
            self._event_seqs[record.id] = int(last) + 1

    def recover(self) -> tuple[int, int]:
        """Reload persisted jobs; returns ``(requeued, failed)`` counts.

        Call once before serving: queued jobs re-enter the queue in
        their original order, jobs that died running are failed with an
        explicit cause and their streams get the terminal event.
        """
        requeue, failed_now = self.store.recover()
        for rec in requeue:
            self._register(rec)
            self._submit_seq = max(self._submit_seq, rec.seq)
            self.queue.push(rec.id, priority=rec.priority, seq=rec.seq)
        for rec in failed_now:
            self._register(rec)
            self._submit_seq = max(self._submit_seq, rec.seq)
            self.emit(rec.id, lambda seq, r=rec: state_event(
                r.id, seq, "failed", error=r.error, ok=False))
        return len(requeue), len(failed_now)

    # -- event stream ---------------------------------------------------

    def emit(self, job_id: str,
             make: Callable[[int], dict[str, Any]]) -> dict[str, Any]:
        """Append one event to the job's stream and fan it out.

        ``make(seq)`` builds the event once its sequence number is
        allocated; the append, the fan-out and any concurrent
        :meth:`attach` serialize on the job's emission lock, which is
        what makes the file-replay → live-subscription handoff exact.
        """
        with self._emit_locks[job_id]:
            seq = self._event_seqs.get(job_id, 0)
            self._event_seqs[job_id] = seq + 1
            event = make(seq)
            self.store.append_event(job_id, json.dumps(
                event, sort_keys=True))
            self.hubs[job_id].publish(event)
        return event

    def attach(self, job_id: str, *, maxlen: int | None = None
               ) -> tuple[list[dict[str, Any]], Any]:
        """A watcher's entry: ``(past_events, subscription_or_None)``.

        Replays everything already on disk and — unless the job is
        terminal — subscribes to the live stream under the same lock
        :meth:`emit` holds, so no event is missed or duplicated across
        the boundary.
        """
        record = self.records[job_id]
        with self._emit_locks[job_id]:
            past = self.store.read_events(job_id)
            if record.terminal:
                return past, None
            return past, self.hubs[job_id].subscribe(maxlen=maxlen)

    # -- submission / cancellation (sync; run off the event loop) -------

    def submit(self, normalized: dict[str, Any]) -> JobRecord:
        """Persist and enqueue one validated job; returns its record."""
        if self.draining:
            raise RuntimeError("server is draining; not accepting jobs")
        with self._table_lock:
            self._submit_seq += 1
            record = JobRecord(
                id=self.store.next_id(), kind=normalized["kind"],
                spec=normalized["spec"],
                priority=normalized["priority"], seq=self._submit_seq)
            self._register(record)
            self.store.save(record)
            self.queue.push(record.id, priority=record.priority,
                            seq=record.seq)
        self.emit(record.id,
                  lambda seq: state_event(record.id, seq, "queued"))
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cooperatively cancel a job; returns its (current) record.

        Queued jobs transition immediately; running jobs get their
        cancel event set and transition when the body drains.  Terminal
        jobs are a no-op.
        """
        with self._table_lock:
            record = self.records[job_id]
            if record.terminal:
                return record
            was_queued = self.queue.remove(job_id)
        if was_queued:
            with self._emit_locks[job_id]:
                record.advance("cancelled")
                record.error = "cancelled while queued"
                self.store.save(record)
                self.emit(job_id, lambda seq: state_event(
                    job_id, seq, "cancelled", error=record.error,
                    ok=False))
        else:
            cancel = self.cancels.get(job_id)
            if cancel is not None:
                cancel.set()
        return record

    def kick(self) -> None:
        """Wake the dispatch loop (call from the event loop)."""
        self._wake.set()

    # -- dispatch -------------------------------------------------------

    async def dispatch_loop(self) -> None:
        """Start queued jobs whenever capacity frees up (runs forever;
        the server cancels this task at shutdown)."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            while not self.draining and len(self.tasks) < self.max_jobs:
                with self._table_lock:
                    job_id = self.queue.pop()
                if job_id is None:
                    break
                self._launch(self.records[job_id])

    def _launch(self, record: JobRecord) -> None:
        # Synchronous on purpose: the job must own a task in ``tasks``
        # before any suspension point, or a shutdown arriving mid-launch
        # could cancel the dispatch loop after the record was marked
        # running with nothing left responsible for finishing it.
        cancel = threading.Event()
        self.cancels[record.id] = cancel
        if self.draining:
            cancel.set()
        self.tasks[record.id] = asyncio.create_task(
            self._job_task(record, cancel))

    def _mark_running(self, record: JobRecord) -> None:
        with self._emit_locks[record.id]:
            record.advance("running")
            self.store.save(record)
            self.emit(record.id,
                      lambda seq: state_event(record.id, seq, "running"))

    async def _job_task(self, record: JobRecord,
                        cancel: threading.Event) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._mark_running, record)
        fut = loop.run_in_executor(None, self._run_body, record, cancel)
        # Per-job wall-clock watchdog (spec field ``timeout_s``): on
        # expiry set the cooperative cancel event and wait for the body
        # to drain — executor threads cannot be killed, so a body that
        # ignores its cancel event still holds the future until it
        # returns.  The verdict is ``failed`` with a ``timeout:`` cause
        # (not ``cancelled`` — nobody asked for the job to stop).
        timeout_s = record.spec.get("timeout_s")
        timed_out = False
        if timeout_s is not None:
            done, _ = await asyncio.wait({fut}, timeout=timeout_s)
            timed_out = not done
            if timed_out:
                cancel.set()
        try:
            result = await fut
            error = None
        except Exception as exc:  # body bugs become failed jobs
            result, error = None, f"{type(exc).__name__}: {exc}"
        if timed_out:
            result = None
            error = f"timeout: exceeded timeout_s={timeout_s}"
        await loop.run_in_executor(
            None, self._finish, record, result, error,
            cancel.is_set() and not timed_out)
        self.tasks.pop(record.id, None)
        self.cancels.pop(record.id, None)
        self.kick()

    def _finish(self, record: JobRecord, result: dict[str, Any] | None,
                error: str | None, cancelled: bool) -> None:
        ok = bool(result.get("ok", False)) if result is not None else False
        if error is not None:
            state = "failed"
        elif cancelled:
            state, error = "cancelled", "cancelled while running"
        elif ok:
            state = "done"
        else:
            state, error = "failed", "job acceptance failed (ok=false)"
        with self._emit_locks[record.id]:
            record.advance(state)
            record.error = error
            record.result = result
            self.store.save(record)
            self.emit(record.id, lambda seq: state_event(
                record.id, seq, state, error=error, ok=ok))

    async def drain(self) -> None:
        """Stop starting jobs, checkpoint-cancel the running ones, wait.

        Queued jobs stay persisted as *queued* — a restarted server
        recovers and runs them.
        """
        self.draining = True
        for cancel in list(self.cancels.values()):
            cancel.set()
        while self.tasks:
            pending = list(self.tasks.values())
            await asyncio.gather(*pending, return_exceptions=True)
        for hub in self.hubs.values():
            hub.close()

    # -- job bodies (sync; executor threads) ----------------------------

    def _run_body(self, record: JobRecord,
                  cancel: threading.Event) -> dict[str, Any]:
        art = self.store.artifacts_dir(record.id)
        art.mkdir(parents=True, exist_ok=True)
        tracer = Tracer([JsonlSink(art / "trace.jsonl"),
                         _TraceRelay(self, record.id)], host="harness")
        tracer.span_start("run", f"serve:{record.id}", 0.0,
                          kind=record.kind)
        try:
            body = getattr(self, "_body_" +
                           record.kind.replace("-", "_"))
            result = body(record.spec, art, tracer, cancel)
        finally:
            tracer.span_end("run", f"serve:{record.id}", 1.0)
            tracer.close()
        (art / "result.json").write_text(
            json.dumps(result, indent=2, sort_keys=True, default=repr)
            + "\n", "utf-8")
        return result

    def _body_sweep(self, spec: dict[str, Any], art: Path, tracer: Tracer,
                    cancel: threading.Event) -> dict[str, Any]:
        base = ExperimentConfig(
            n=spec["n"], seed=spec["seed"], horizon=spec["horizon"],
            checkpoint_interval=spec["interval"], verify=spec["verify"])
        configs: list[ExperimentConfig] = []
        labels: dict[str, tuple[Any, str]] = {}
        for i, value in enumerate(spec["values"]):
            cfg = _set_param(base, spec["param"], value)
            if spec["param"] != "seed":
                cfg = cfg.derive(seed=base.seed + i)
            for proto in spec["protocols"]:
                pcfg = cfg.derive(protocol=proto)
                configs.append(pcfg)
                labels[config_key(pcfg)] = (value, proto)
        cache = ResultCache(self.cache_dir)
        outcomes = run_many(configs, jobs=spec["jobs"], cache=cache,
                            cancel_event=cancel)
        rows, cached, failures = [], 0, 0
        for outcome in outcomes:
            value, proto = labels[config_key(outcome.config)]
            if isinstance(outcome, RunFailure):
                failures += 1
                rows.append({"value": value, "protocol": proto,
                             "ok": False, "error": outcome.error})
                continue
            cached += 1 if outcome.cached else 0
            row = outcome.metrics.as_dict()
            tracer.point("sweep.run", float(row.get("makespan", 0.0)),
                         protocol=proto, **{spec["param"]: value})
            rows.append({"value": value, "protocol": proto,
                         "ok": outcome.ok, "cached": outcome.cached,
                         "makespan": row.get("makespan")})
        return {"ok": (failures == 0 and len(rows) == len(configs)
                       and all(r["ok"] for r in rows)),
                "param": spec["param"], "values": spec["values"],
                "total": len(configs), "completed": len(rows),
                "cached": cached, "failures": failures, "rows": rows}

    def _body_chaos_matrix(self, spec: dict[str, Any], art: Path,
                           tracer: Tracer,
                           cancel: threading.Event) -> dict[str, Any]:
        from ..chaos.matrix import run_matrix
        report = run_matrix(
            tuple(spec["kinds"]), tuple(spec["runtimes"]),
            seed=spec["seed"], transport=spec["transport"],
            duration=spec["duration"], jobs=spec["jobs"],
            run_root=art / "cells", tracer=tracer, cancel_event=cancel)
        payload = report.as_dict()
        (art / "matrix.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")
        return payload

    def _body_live_run(self, spec: dict[str, Any], art: Path,
                       tracer: Tracer,
                       cancel: threading.Event) -> dict[str, Any]:
        from ..live.supervisor import LiveRunConfig, run_live
        cfg = LiveRunConfig(
            n=spec["n"], transport=spec["transport"],
            duration=spec["duration"],
            checkpoint_interval=spec["interval"], timeout=spec["timeout"],
            rate=spec["rate"], seed=spec["seed"],
            crash_at=spec["crash_at"], workload=spec["workload"],
            run_dir=str(art / "live"), stop_event=cancel)
        report = run_live(cfg)
        return report.as_dict()

    def _body_bench(self, spec: dict[str, Any], art: Path, tracer: Tracer,
                    cancel: threading.Event) -> dict[str, Any]:
        from ..harness.executor import bench_configs, bench_executor
        configs = bench_configs(
            n_values=[int(v) for v in spec["values"]],
            protocols=tuple(spec["protocols"]), horizon=spec["horizon"],
            seed=spec["seed"], repeats=spec["repeats"])
        return bench_executor(jobs=spec["jobs"],
                              out_path=art / "BENCH_executor.json",
                              configs=configs, progress=None)
