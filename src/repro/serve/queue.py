"""The priority FIFO behind the scheduler.

Higher ``priority`` runs first; within one priority, submission order
wins (FIFO) — implemented as a heap on ``(-priority, seq)``.  The queue
holds job *ids* only; the scheduler owns the records.  ``remove`` exists
for cancel-while-queued: a cancelled id is dropped lazily (marked dead,
skipped at pop), so cancelling never reshuffles the heap.
"""

from __future__ import annotations

import heapq


class JobQueue:
    """Priority FIFO of job ids (single-threaded: event-loop use only)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._dead: set[str] = set()
        self._queued: set[str] = set()

    def __len__(self) -> int:
        return len(self._queued)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._queued

    def push(self, job_id: str, *, priority: int = 0, seq: int = 0) -> None:
        """Enqueue one job id (``seq`` is the FIFO tiebreaker)."""
        if job_id in self._queued:
            raise ValueError(f"job {job_id} is already queued")
        self._dead.discard(job_id)
        self._queued.add(job_id)
        heapq.heappush(self._heap, (-priority, seq, job_id))

    def pop(self) -> str | None:
        """The next runnable job id, or None when empty."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._dead:
                self._dead.discard(job_id)
                continue
            self._queued.discard(job_id)
            return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Drop a queued id (cancel-while-queued); False if not queued."""
        if job_id not in self._queued:
            return False
        self._queued.discard(job_id)
        self._dead.add(job_id)
        return True

    def drain_ids(self) -> list[str]:
        """Every still-queued id, best first (non-destructive)."""
        live = [(p, s, j) for p, s, j in self._heap
                if j not in self._dead and j in self._queued]
        return [j for _, _, j in sorted(live)]
