"""Durable job state under ``.repro-serve/``.

One directory per job::

    <state-dir>/jobs/<job-id>/job.json       the JobRecord (atomic writes)
    <state-dir>/jobs/<job-id>/events.jsonl   the serve event stream
    <state-dir>/jobs/<job-id>/artifacts/     run outputs (traces, reports)

``job.json`` writes go through the same tmp-file + ``rename`` discipline
as the executor's :class:`~repro.harness.executor.ResultCache`: a crash
mid-write leaves either the old record or the new one, never a torn
file.  On restart :meth:`JobStore.recover` reloads every record —
*queued* jobs re-enter the queue exactly as submitted, while jobs that
were *running* when the server died are marked failed with an explicit
cause (their worker process is gone; silently re-running them could
double side effects), so a recovered queue is honest about what was
lost.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from .protocol import (
    JOB_STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    ProtocolError,
)

#: Default state directory, relative to the working directory.
DEFAULT_STATE_DIR = ".repro-serve"


@dataclass
class JobRecord:
    """Everything the server persists about one job."""

    id: str
    kind: str
    spec: dict[str, Any]
    priority: int = 0
    #: Submission order; ties on priority break FIFO by this number.
    seq: int = 0
    state: str = "queued"
    error: str | None = None
    #: The job body's JSON result payload (terminal states only).
    result: dict[str, Any] | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(self, new_state: str) -> None:
        """Move the state machine; an illegal move is a server bug."""
        if new_state not in JOB_STATES:
            raise ProtocolError(f"unknown job state {new_state!r}")
        if new_state not in TRANSITIONS[self.state]:
            raise ProtocolError(
                f"illegal transition {self.state!r} -> {new_state!r} "
                f"for job {self.id}")
        self.state = new_state

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready record (the ``GET /jobs/{id}`` shape)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        return cls(**{k: v for k, v in data.items() if k in known})


class JobStore:
    """Filesystem persistence for :class:`JobRecord` objects."""

    def __init__(self, root: str | Path = DEFAULT_STATE_DIR) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"

    # -- paths ----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """One job's state directory."""
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        """Where one job's ``job.json`` record lives."""
        return self.job_dir(job_id) / "job.json"

    def events_path(self, job_id: str) -> Path:
        """Where one job's ``events.jsonl`` stream lives."""
        return self.job_dir(job_id) / "events.jsonl"

    def artifacts_dir(self, job_id: str) -> Path:
        """Where one job's run outputs (traces, reports) live."""
        return self.job_dir(job_id) / "artifacts"

    # -- records --------------------------------------------------------

    def next_id(self) -> str:
        """Allocate the next job id (``j0001``, ``j0002``, ...).

        Ids are dense and ordered so a restarted server continues the
        numbering instead of colliding with persisted jobs.
        """
        highest = 0
        if self.jobs_dir.is_dir():
            for path in self.jobs_dir.iterdir():
                name = path.name
                if name.startswith("j") and name[1:].isdigit():
                    highest = max(highest, int(name[1:]))
        return f"j{highest + 1:04d}"

    def save(self, record: JobRecord) -> None:
        """Atomically persist one record (tmp file + rename)."""
        path = self.record_path(record.id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record.as_dict(), sort_keys=True,
                                  indent=1), "utf-8")
        tmp.replace(path)

    def load(self, job_id: str) -> JobRecord | None:
        """One persisted record, or None if absent/corrupt."""
        try:
            data = json.loads(self.record_path(job_id).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or "id" not in data:
            return None
        return JobRecord.from_dict(data)

    def load_all(self) -> list[JobRecord]:
        """Every persisted record, in submission order."""
        records = []
        if self.jobs_dir.is_dir():
            for path in sorted(self.jobs_dir.iterdir()):
                rec = self.load(path.name)
                if rec is not None:
                    records.append(rec)
        return sorted(records, key=lambda r: r.seq)

    def append_event(self, job_id: str, line: str) -> None:
        """Append one already-encoded event line to the job's stream."""
        path = self.events_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def read_events(self, job_id: str) -> list[dict[str, Any]]:
        """Every event on the job's stream so far (skips torn tails)."""
        path = self.events_path(job_id)
        events: list[dict[str, Any]] = []
        if not path.is_file():
            return events
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    break              # torn tail from a crashed append
        return events

    # -- restart recovery ----------------------------------------------

    def recover(self) -> tuple[list[JobRecord], list[JobRecord]]:
        """Reload persisted jobs; returns ``(requeue, failed_now)``.

        Queued jobs come back verbatim (``requeue``); jobs persisted as
        *running* are transitioned to failed with an explicit cause and
        re-saved (``failed_now``) — their worker died with the server.
        """
        requeue: list[JobRecord] = []
        failed_now: list[JobRecord] = []
        for rec in self.load_all():
            if rec.state == "queued":
                requeue.append(rec)
            elif rec.state == "running":
                rec.advance("failed")
                rec.error = "server terminated while the job was running"
                self.save(rec)
                failed_now.append(rec)
        return requeue, failed_now
