"""Live rollback recovery for the optimistic protocol.

Executes the paper's recovery story *inside* the simulation instead of
analyzing it post-hoc: when a process fails, the system rolls back to the
most recent fully-finalized global checkpoint ``S_k`` and resumes —

1. the failure is a fail-stop crash (via the
   :class:`~repro.recovery.failure.FailureInjector` mechanics);
2. after ``recovery_delay`` (detection + restart time), every process —
   including the restarted one — invokes
   :meth:`~repro.core.host.OptimisticProcess.rollback_to` with the largest
   ``k`` such that every ``C_{i,k}`` was finalized (durable) before the
   crash;
3. all channels are flushed (in-flight messages belong to the discarded
   execution);
4. processes resume: scheduled checkpointing re-arms and applications
   restart from the recovered state, re-executing the lost work.

Post-recovery rounds continue from sequence number ``k+1`` and must again
form consistent global checkpoints — the regression the tests pin.

Simplification vs a real deployment: recovery is executed atomically at one
simulated instant across all processes (a real system would run a recovery
protocol taking a round-trip or two).  Since no application work happens
during recovery in either case, this only shifts the timeline, not the
protocol behaviour under test.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.host import OptimisticRuntime
from .failure import FailureInjector


@dataclass
class RecoveryEvent:
    """Record of one executed crash-and-recover cycle."""

    failed_pid: int
    crash_time: float
    recovery_time: float
    recovered_seq: int
    dropped_messages: int


class RecoveryManager:
    """Crash a process and execute system-wide rollback recovery."""

    def __init__(self, runtime: OptimisticRuntime,
                 injector: FailureInjector | None = None) -> None:
        self.runtime = runtime
        self.sim = runtime.sim
        self.injector = injector if injector is not None else FailureInjector(
            self.sim, runtime.network)
        self.events: list[RecoveryEvent] = []

    def crash_and_recover(self, pid: int, at: float,
                          recovery_delay: float = 5.0,
                          restart_app: bool = True) -> None:
        """Schedule a crash of ``pid`` at ``at`` and recovery afterwards."""
        if recovery_delay <= 0:
            raise ValueError("recovery_delay must be positive")
        self.injector.crash(pid, at)
        self.sim.schedule_at(at + recovery_delay,
                             lambda: self._recover(pid, at, restart_app))

    # -- internals ---------------------------------------------------------------

    def _durable_seq(self) -> int:
        """Largest k with every C_{i,k} finalized by now (k=0 always works)."""
        best = 0
        for seq in self.runtime.finalized_seqs():
            records = [self.runtime.hosts[pid].finalized.get(seq)
                       for pid in self.runtime.hosts]
            if all(fc is not None and fc.finalized_at <= self.sim.now
                   for fc in records):
                best = seq
        return best

    def _recover(self, pid: int, crash_time: float,
                 restart_app: bool) -> None:
        seq = self._durable_seq()
        dropped = self.runtime.network.drop_in_flight()
        # Roll every process back; this also un-halts the crashed one.
        for host in self.runtime.hosts.values():
            host.rollback_to(seq, restart_app=restart_app)
        self.injector.crashed.discard(pid)
        self.sim.trace.record(self.sim.now, "recovery.complete", pid,
                              seq=seq, dropped=dropped)
        self.events.append(RecoveryEvent(
            failed_pid=pid, crash_time=crash_time,
            recovery_time=self.sim.now, recovered_seq=seq,
            dropped_messages=dropped))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecoveryManager(events={len(self.events)})"
