"""Failure injection, recovery-cost analysis (E8), and live rollback
recovery for the optimistic protocol."""

from .failure import CrashPlan, FailureInjector
from .partition import Partition, PartitionInjector
from .restart import RecoveryEvent, RecoveryManager
from .rollback import (
    NoRecoveryPoint,
    RecoveryOutcome,
    interval_messages_at,
    recover_cic,
    recover_coordinated,
    recover_optimistic,
    recover_optimistic_no_log,
    recover_quasi_sync_ms,
    recover_uncoordinated,
)

__all__ = [
    "CrashPlan",
    "FailureInjector",
    "NoRecoveryPoint",
    "Partition",
    "PartitionInjector",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryOutcome",
    "interval_messages_at",
    "recover_cic",
    "recover_coordinated",
    "recover_optimistic",
    "recover_optimistic_no_log",
    "recover_quasi_sync_ms",
    "recover_uncoordinated",
]
