"""Failure injection.

Crashes a process at a chosen simulated time: from that instant the process
neither receives deliveries, nor fires its timers, nor (consequently) sends
anything new.  Messages it sent *before* the crash remain in flight and are
delivered normally (fail-stop model with asynchronous channels).

Most recovery experiments analyse a failure *post-hoc* (run failure-free,
then ask "what would a crash at time t cost?" via :mod:`.rollback`), which
keeps one simulated run reusable for many hypothetical failure times.  The
injector exists for the cases where the failure's effect on the *live*
protocol matters — e.g. checking that surviving processes' checkpoint
rounds stall rather than corrupt state, and that already-finalized global
checkpoints stay consistent (strictness is relaxed because a crash breaks
the theorems' failure-free assumptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..des.engine import Simulator
from ..net.message import Message
from ..net.network import Network


@dataclass
class CrashPlan:
    """One scheduled crash."""

    pid: int
    at: float
    executed: bool = False


class FailureInjector:
    """Schedules fail-stop crashes and gates the network accordingly."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.plans: list[CrashPlan] = []
        self.crashed: set[int] = set()
        self._prev_gate = network.delivery_gate
        network.delivery_gate = self._gate

    def crash(self, pid: int, at: float) -> CrashPlan:
        """Schedule a fail-stop crash of ``pid`` at simulated time ``at``."""
        if pid not in self.network.processes:
            raise ValueError(f"unknown process {pid}")
        plan = CrashPlan(pid=pid, at=at)
        self.plans.append(plan)
        self.sim.schedule_at(at, lambda: self._execute(plan))
        return plan

    def _execute(self, plan: CrashPlan) -> None:
        plan.executed = True
        self.crashed.add(plan.pid)
        proc = self.network.processes[plan.pid]
        proc.halted = True
        self.sim.trace.record(self.sim.now, "failure.crash", plan.pid)

    def _gate(self, msg: Message) -> bool:
        if msg.dst in self.crashed:
            msg.meta["drop_cause"] = "crashed"
            return False
        if self._prev_gate is not None:
            return self._prev_gate(msg)
        return True

    def alive(self) -> list[int]:
        """Pids of processes that have not crashed."""
        return [pid for pid in sorted(self.network.processes)
                if pid not in self.crashed]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureInjector(crashed={sorted(self.crashed)})"
