"""Network partition injection.

The paper's system model promises *finite but arbitrary* delays — a
temporary partition is the extreme case: messages across the cut are
delayed until the partition heals, but never lost.  Theorem 1 (convergence)
must therefore survive partitions: a round started before or during one
finalizes after the heal.

:class:`PartitionInjector` installs a delivery gate that intercepts
messages crossing the cut, parks them, and re-delivers them (in original
arrival order, with a small spacing) once the partition heals.  Multiple
sequential partitions are supported; overlapping ones are rejected for
clarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..des.engine import Simulator
from ..des.events import EventPriority
from ..net.message import Message
from ..net.network import Network

#: Spacing between re-deliveries at heal time (keeps the total order
#: deterministic and avoids a zero-duration delivery burst).
REDELIVERY_SPACING = 1e-6


@dataclass
class Partition:
    """One scheduled partition: two groups, a start and an end."""

    group_a: frozenset[int]
    group_b: frozenset[int]
    start: float
    end: float
    held: list[Message] = field(default_factory=list)
    healed: bool = False

    def separates(self, src: int, dst: int) -> bool:
        """Whether the (src, dst) channel crosses this partition's cut."""
        return ((src in self.group_a and dst in self.group_b)
                or (src in self.group_b and dst in self.group_a))


class PartitionInjector:
    """Schedules partitions and holds cross-cut messages until heal."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.partitions: list[Partition] = []
        self._active: Partition | None = None
        self._prev_gate = network.delivery_gate
        network.delivery_gate = self._gate

    def partition(self, group_a, group_b, start: float,
                  end: float) -> Partition:
        """Split the system into two groups over ``[start, end)``."""
        a, b = frozenset(group_a), frozenset(group_b)
        if not a or not b:
            raise ValueError("both groups must be non-empty")
        if a & b:
            raise ValueError(f"groups overlap: {sorted(a & b)}")
        if end <= start:
            raise ValueError("end must be after start")
        for p in self.partitions:
            if start < p.end and p.start < end:
                raise ValueError("overlapping partitions are not supported")
        part = Partition(group_a=a, group_b=b, start=start, end=end)
        self.partitions.append(part)
        self.sim.schedule_at(start, lambda: self._begin(part))
        self.sim.schedule_at(end, lambda: self._heal(part))
        return part

    # -- internals ------------------------------------------------------------

    def _begin(self, part: Partition) -> None:
        self._active = part
        self.sim.trace.record(self.sim.now, "partition.begin", -1,
                              a=sorted(part.group_a), b=sorted(part.group_b))

    def _heal(self, part: Partition) -> None:
        part.healed = True
        if self._active is part:
            self._active = None
        self.sim.trace.record(self.sim.now, "partition.heal", -1,
                              released=len(part.held))
        for i, msg in enumerate(part.held):
            self.sim.schedule((i + 1) * REDELIVERY_SPACING,
                              lambda m=msg: self._redeliver(m),
                              priority=EventPriority.DELIVERY)
        part.held = []

    def _redeliver(self, msg: Message) -> None:
        # Run the full gate chain again (the destination may have crashed,
        # or another partition begun, in the meantime).
        if not self._gate(msg):
            return
        msg.deliver_time = self.sim.now
        self.sim.trace.record(self.sim.now, "msg.deliver", msg.dst,
                              uid=msg.uid, src=msg.src, kind=msg.kind,
                              bytes=msg.total_bytes, redelivered=True)
        self.network.processes[msg.dst]._deliver(msg)

    def _gate(self, msg: Message) -> bool:
        part = self._active
        if part is not None and not part.healed \
                and part.separates(msg.src, msg.dst):
            part.held.append(msg)
            msg.meta["drop_cause"] = "partition"
            self.sim.trace.record(self.sim.now, "msg.held", msg.dst,
                                  uid=msg.uid, src=msg.src, kind=msg.kind)
            return False
        if self._prev_gate is not None:
            return self._prev_gate(msg)
        return True

    def held_count(self) -> int:
        """Messages currently parked across all active partitions."""
        return sum(len(p.held) for p in self.partitions if not p.healed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PartitionInjector(partitions={len(self.partitions)}, "
                f"held={self.held_count()})")
