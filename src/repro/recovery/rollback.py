"""Post-hoc recovery-cost analysis, per protocol.

Given one finished (failure-free) run and a hypothetical failure time, each
``recover_*`` function answers: *to what state would every process recover,
and how much work is lost?*  This is experiment E8's engine and directly
quantifies the paper's recovery story:

* **optimistic** — roll back to the last fully-finalized ``S_k``; because
  the checkpoint *includes* the selective message log, the recovered state
  of each process is its state at the finalization instant ``CFE_{i,k}``
  (restore ``CT`` then replay the log), not at the earlier tentative
  capture — selective logging buys back the tentative-to-finalize gap;
* **coordinated** (Chandy-Lamport / Koo-Toueg / staggered) — roll back to
  the last *complete* round's capture instants;
* **CIC** — roll back to the largest index cut wholly in the past;
* **uncoordinated** — run the rollback-propagation fixpoint over the
  checkpoints and messages that exist at the failure time: the domino
  effect in action; with receiver logging, logged messages are replayable
  and the line stays at the latest checkpoints.

Lost work for process ``i`` = failure time − the sim-time its recovered
state corresponds to (capped below at 0 for processes "recovered" to a
state captured after another's failure point — cannot happen for consistent
cuts, asserted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..causality.recovery_line import (
    IntervalMessage,
    compute_recovery_line,
)
from ..des.trace import TraceRecorder


@dataclass
class RecoveryOutcome:
    """Result of one hypothetical recovery."""

    protocol: str
    fail_time: float
    #: Which cut was used (sequence number / round / index; -1 for the
    #: uncoordinated fixpoint which has no single id).
    seq: int
    #: pid -> simulated time of the recovered state.
    recovered_to: dict[int, float]
    #: pid -> work lost (fail_time - recovered_to).
    lost_work: dict[int, float] = field(default_factory=dict)
    #: pid -> checkpoints discarded (meaningful for uncoordinated).
    rollback_checkpoints: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lost_work:
            self.lost_work = {pid: self.fail_time - t
                              for pid, t in self.recovered_to.items()}
        for pid, lost in self.lost_work.items():
            assert lost >= -1e-9, (
                f"P{pid} 'recovered' to the future ({lost})")

    @property
    def total_lost_work(self) -> float:
        return sum(self.lost_work.values())

    @property
    def max_lost_work(self) -> float:
        return max(self.lost_work.values(), default=0.0)

    @property
    def processes_rolled_back(self) -> int:
        return sum(1 for d in self.rollback_checkpoints.values() if d > 0)


class NoRecoveryPoint(RuntimeError):
    """No complete global checkpoint exists before the failure time.

    Every protocol's initial state (t=0) is a valid fallback, so callers
    that want "restart from scratch" semantics catch this and use 0.
    """


def recover_optimistic(runtime: Any, fail_time: float) -> RecoveryOutcome:
    """Recovery under the paper's protocol: last fully-finalized S_k."""
    best_seq = None
    for seq in runtime.finalized_seqs():
        if all(runtime.hosts[pid].finalized[seq].finalized_at <= fail_time
               for pid in runtime.hosts):
            best_seq = seq
    if best_seq is None:
        raise NoRecoveryPoint(f"no finalized S_k before t={fail_time}")
    recovered = {}
    for pid, host in runtime.hosts.items():
        fc = host.finalized[best_seq]
        # Restore CT, replay logSet ⇒ the state at the finalization event.
        recovered[pid] = min(fc.finalized_at, fail_time)
    return RecoveryOutcome(protocol="optimistic", fail_time=fail_time,
                           seq=best_seq, recovered_to=recovered)


def recover_optimistic_no_log(runtime: Any,
                              fail_time: float) -> RecoveryOutcome:
    """Ablation: same cuts, but pretend the message log were *not* part of
    the checkpoint — recovery lands on the tentative-capture instants.

    The gap between this and :func:`recover_optimistic` is precisely the
    work the selective log buys back (E12 reports it).
    """
    base = recover_optimistic(runtime, fail_time)
    recovered = {}
    for pid, host in runtime.hosts.items():
        fc = host.finalized[base.seq]
        recovered[pid] = fc.tentative.taken_at
    return RecoveryOutcome(protocol="optimistic-nolog",
                           fail_time=fail_time, seq=base.seq,
                           recovered_to=recovered)


def recover_coordinated(runtime: Any, fail_time: float,
                        protocol: str) -> RecoveryOutcome:
    """Recovery for CL / Koo-Toueg / staggered: last complete round.

    A round counts only if *every* process had completed (committed) it by
    the failure time — an in-progress round's writes may be partial.
    """
    records_by_round = runtime.global_records()
    best = None
    for r, records in sorted(records_by_round.items()):
        if all(rec.finalized_at is not None and rec.finalized_at <= fail_time
               for rec in records.values()):
            best = r
    if best is None:
        raise NoRecoveryPoint(
            f"{protocol}: no complete round before t={fail_time}")
    recovered = {pid: rec.taken_at
                 for pid, rec in records_by_round[best].items()}
    return RecoveryOutcome(protocol=protocol, fail_time=fail_time,
                           seq=best, recovered_to=recovered)


def recover_cic(runtime: Any, fail_time: float) -> RecoveryOutcome:
    """Recovery for index-based CIC: largest index cut wholly in the past."""
    best_k = None
    cut: dict[int, float] = {}
    for k in runtime.common_indices():
        times = {}
        ok = True
        for pid, host in runtime.hosts.items():
            rec = host.cut_record(k)
            if rec.taken_at > fail_time:
                ok = False
                break
            times[pid] = rec.taken_at
        if ok:
            best_k, cut = k, times
    if best_k is None:
        raise NoRecoveryPoint(f"cic: no index cut before t={fail_time}")
    return RecoveryOutcome(protocol="cic-bcs", fail_time=fail_time,
                           seq=best_k, recovered_to=cut)


def recover_quasi_sync_ms(runtime: Any, fail_time: float) -> RecoveryOutcome:
    """Recovery for MS quasi-synchronous: largest sn cut wholly in the past."""
    best_k = None
    cut: dict[int, float] = {}
    for k in runtime.common_sns():
        times = {}
        ok = True
        for pid, host in runtime.hosts.items():
            rec = host.cut_record(k)
            if rec.taken_at > fail_time:
                ok = False
                break
            times[pid] = rec.taken_at
        if ok:
            best_k, cut = k, times
    if best_k is None:
        raise NoRecoveryPoint(f"quasi-sync-ms: no sn cut before t={fail_time}")
    return RecoveryOutcome(protocol="quasi-sync-ms", fail_time=fail_time,
                           seq=best_k, recovered_to=cut)


def interval_messages_at(runtime: Any, trace: TraceRecorder,
                         fail_time: float) -> tuple[
                             dict[int, int], list[IntervalMessage],
                             dict[int, list[float]]]:
    """Uncoordinated-recovery inputs restricted to events before ``fail_time``.

    Returns ``(start_cut, messages, checkpoint_times)`` where ``start_cut``
    maps each pid to its latest checkpoint number taken before the failure,
    ``messages`` locates every app message *delivered* before the failure by
    its endpoints' intervals, and ``checkpoint_times[pid][m]`` is the take
    time of checkpoint ``m`` (index 0 = t0 initial state).
    """
    deliver_time: dict[int, float] = {}
    for rec in trace:
        if rec.kind == "msg.deliver" and rec.data.get("kind") == "app":
            deliver_time[rec.data["uid"]] = rec.time
    start: dict[int, int] = {}
    ck_times: dict[int, list[float]] = {}
    for pid, host in runtime.hosts.items():
        usable = [ck for ck in host.checkpoints if ck.taken_at <= fail_time]
        start[pid] = len(usable)
        ck_times[pid] = [0.0] + [ck.taken_at for ck in usable]
    send_interval: dict[int, tuple[int, int]] = {}
    for pid, host in runtime.hosts.items():
        usable = start[pid]
        for i, uid in enumerate(host.sent_uids):
            iv = sum(1 for ck in host.checkpoints[:usable] if ck.smark <= i)
            send_interval[uid] = (pid, iv)
    messages: list[IntervalMessage] = []
    for pid, host in runtime.hosts.items():
        usable = start[pid]
        for i, uid in enumerate(host.recv_uids):
            if deliver_time.get(uid, float("inf")) > fail_time:
                continue
            src, s_iv = send_interval[uid]
            r_iv = sum(1 for ck in host.checkpoints[:usable] if ck.rmark <= i)
            messages.append(IntervalMessage(src=src, src_interval=s_iv,
                                            dst=pid, dst_interval=r_iv,
                                            uid=uid))
    return start, messages, ck_times


def recover_uncoordinated(runtime: Any, trace: TraceRecorder,
                          fail_time: float,
                          use_logs: bool = False) -> RecoveryOutcome:
    """Recovery for independent checkpointing: the rollback fixpoint.

    With ``use_logs`` (and the runtime having logged receives), logged
    messages are replayable and never orphan — rollback collapses to the
    latest checkpoints, demonstrating message logging's rescue of the
    domino effect (paper §1 / reference [4]).
    """
    start, messages, ck_times = interval_messages_at(runtime, trace,
                                                     fail_time)
    if use_logs:
        logged = runtime.logged_uids()
        messages = [m for m in messages if m.uid not in logged]
    result = compute_recovery_line(start, messages)
    recovered = {pid: ck_times[pid][result.line[pid]] for pid in start}
    name = "uncoordinated+log" if use_logs else "uncoordinated"
    return RecoveryOutcome(protocol=name, fail_time=fail_time, seq=-1,
                           recovered_to=recovered,
                           rollback_checkpoints=result.rollbacks)
